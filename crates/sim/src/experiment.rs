//! Seeded experiments and their aggregated results.
//!
//! [`ExperimentConfig`] is a *lowered form*: plain data with no defaulting
//! of its own. The documented way to produce one is the `Scenario` builder
//! in the `mbaa` facade crate (`Scenario::to_experiment` /
//! `Scenario::batch(..).summarize()`), which is where every default is
//! decided.

use std::sync::Mutex;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use mbaa_adversary::{CorruptionStrategy, MobilityStrategy};
use mbaa_core::{
    shape_compatible, BatchEngine, MobileRunOutcome, Observe, PackedLane, ProtocolConfig,
};
use mbaa_msr::MsrFunction;
use mbaa_net::{DisconnectionPolicy, LinkFaultPlan, Topology, TopologySchedule};
use mbaa_obs::MetricsRegistry;
use mbaa_types::{MobileModel, Result};

use crate::Workload;

/// The description of one experiment point: a `(model, n, f, adversary,
/// algorithm, workload)` combination evaluated over a batch of seeds.
///
/// All fields are public plain data; construct it literally or lower a
/// `mbaa::Scenario` into it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The mobile Byzantine model.
    pub model: MobileModel,
    /// The number of processes.
    pub n: usize,
    /// The number of agents.
    pub f: usize,
    /// The agreement tolerance.
    pub epsilon: f64,
    /// The per-run round budget.
    pub max_rounds: usize,
    /// The adversary's mobility strategy.
    pub mobility: MobilityStrategy,
    /// The adversary's corruption strategy.
    pub corruption: CorruptionStrategy,
    /// The communication graph every exchange is mediated by — recorded
    /// here so summary-level results stay self-describing.
    pub topology: Topology,
    /// The per-round topology schedule, or `None` for the static
    /// [`topology`](ExperimentConfig::topology) axis.
    pub schedule: Option<TopologySchedule>,
    /// Per-link omission/delay faults layered on the structural mask.
    pub link_faults: LinkFaultPlan,
    /// The per-round disconnection policy of a dynamic schedule.
    pub disconnection: DisconnectionPolicy,
    /// The MSR instance to run, or `None` for the model's default.
    pub function: Option<MsrFunction>,
    /// The seeds to evaluate (one full protocol run per seed).
    pub seeds: Vec<u64>,
    /// The initial-value workload.
    pub workload: Workload,
    /// Whether to allow `n` below the model's bound (threshold sweeps).
    pub allow_bound_violation: bool,
    /// The observability level the description was lowered from. Recorded
    /// for self-description; the summary-level executors always run the
    /// engine at [`Observe::Summary`], since only [`RunSummary`] fields
    /// survive anyway and summaries are bit-identical across levels.
    /// Defaults on deserialization so pre-`Observe` documents still load.
    #[serde(default)]
    pub observe: Observe,
}

impl ExperimentConfig {
    /// Lowers one seed of the experiment to its validated
    /// [`ProtocolConfig`].
    ///
    /// # Errors
    ///
    /// Propagates the builder's validation errors.
    pub fn protocol_config(&self, seed: u64) -> Result<ProtocolConfig> {
        let mut builder = ProtocolConfig::builder(self.model, self.n, self.f)
            .epsilon(self.epsilon)
            .max_rounds(self.max_rounds)
            .mobility(self.mobility)
            .corruption(self.corruption)
            .topology(self.topology.clone())
            .link_faults(self.link_faults.clone())
            .disconnection(self.disconnection)
            .observe(self.observe)
            .seed(seed);
        if let Some(schedule) = &self.schedule {
            builder = builder.topology_schedule(schedule.clone());
        }
        if let Some(function) = self.function {
            builder = builder.function(function);
        }
        if self.allow_bound_violation {
            builder = builder.allow_bound_violation();
        }
        builder.build()
    }
}

/// The outcome of one seeded run within an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// The adversary/workload seed of this run.
    pub seed: u64,
    /// Whether ε-agreement was reached within the round budget.
    pub reached_agreement: bool,
    /// Whether validity held at the end of the run.
    pub validity: bool,
    /// Number of rounds executed.
    pub rounds: usize,
    /// Diameter of the non-faulty values at the end of the run.
    pub final_diameter: f64,
    /// Diameter of the non-faulty initial values.
    pub initial_diameter: f64,
    /// Geometric-mean per-round contraction factor, when measurable.
    pub mean_contraction: Option<f64>,
}

impl RunSummary {
    /// Condenses one full run outcome into its summary — the single place
    /// the summary fields are derived, shared by [`run_experiment`], the
    /// facade's `BatchOutcome::to_experiment_result`, and the streaming
    /// paths, so all of them agree field for field.
    #[must_use]
    pub fn from_outcome(seed: u64, outcome: &MobileRunOutcome) -> Self {
        RunSummary {
            seed,
            reached_agreement: outcome.reached_agreement,
            validity: outcome.validity_holds(),
            rounds: outcome.rounds_executed,
            final_diameter: outcome.final_diameter(),
            initial_diameter: outcome.report.initial_diameter(),
            mean_contraction: outcome.report.mean_contraction_factor(),
        }
    }
}

/// The aggregated outcome of an experiment point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// One summary per seed.
    pub runs: Vec<RunSummary>,
}

impl ExperimentResult {
    /// Fraction of runs that reached ε-agreement *and* preserved validity.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        let ok = self
            .runs
            .iter()
            .filter(|r| r.reached_agreement && r.validity)
            .count();
        ok as f64 / self.runs.len() as f64
    }

    /// Returns `true` when every run reached ε-agreement with validity.
    #[must_use]
    pub fn all_succeeded(&self) -> bool {
        !self.runs.is_empty() && self.runs.iter().all(|r| r.reached_agreement && r.validity)
    }

    /// Rounds-to-agreement of the successful runs.
    #[must_use]
    pub fn rounds_of_successful_runs(&self) -> Vec<f64> {
        self.runs
            .iter()
            .filter(|r| r.reached_agreement)
            .map(|r| r.rounds as f64)
            .collect()
    }

    /// Mean rounds-to-agreement over the successful runs, or `None` when no
    /// run succeeded.
    #[must_use]
    pub fn mean_rounds(&self) -> Option<f64> {
        let rounds = self.rounds_of_successful_runs();
        if rounds.is_empty() {
            None
        } else {
            Some(rounds.iter().sum::<f64>() / rounds.len() as f64)
        }
    }

    /// Mean of the per-run contraction factors, over runs where one was
    /// measurable.
    #[must_use]
    pub fn mean_contraction(&self) -> Option<f64> {
        let factors: Vec<f64> = self
            .runs
            .iter()
            .filter_map(|r| r.mean_contraction)
            .collect();
        if factors.is_empty() {
            None
        } else {
            Some(factors.iter().sum::<f64>() / factors.len() as f64)
        }
    }
}

/// Runs every seed of an experiment point — in parallel, since seeded runs
/// are fully independent — and aggregates the outcomes in seed-batch order.
///
/// # Errors
///
/// Propagates configuration errors (for example `n` below the bound without
/// `allow_bound_violation`) and engine errors; the first failing seed in
/// batch order wins, so errors are deterministic.
pub fn run_experiment(config: &ExperimentConfig) -> Result<ExperimentResult> {
    run_experiment_with(config, |_| {})
}

/// How many seeds one [`BatchEngine`] advances in lockstep. Chunking keeps
/// the flat state arrays cache-resident (32 lanes × n values) and leaves
/// enough independent chunks for the rayon pool to spread across workers.
/// Public so the facade's sweep executor can chunk its `(point, seeds)`
/// work pool on the same boundary and stay bit-identical to this path.
pub const BATCH_WIDTH: usize = 32;

/// Explicitly batched form of [`run_experiment`]. Since the summary-level
/// executors route every multi-seed point through the seed-batched
/// [`BatchEngine`] anyway, this is the same computation under a name that
/// documents the intent; it exists so callers can state "batch this point"
/// without depending on the routing rule.
///
/// # Errors
///
/// Exactly as [`run_experiment`].
pub fn run_batch_experiment(config: &ExperimentConfig) -> Result<ExperimentResult> {
    run_experiment(config)
}

/// Streaming variant of [`run_experiment`]: runs every seed-batch chunk in
/// parallel and invokes `on_run` with each completed [`RunSummary`] *as it
/// finishes*, in completion order, on the worker that produced it. The full
/// [`MobileRunOutcome`] (trace + per-round snapshots) is dropped inside the
/// worker as soon as the summary is folded out of it, so memory stays flat
/// no matter how many seeds the batch holds.
///
/// The returned [`ExperimentResult`] is assembled in seed-batch order and is
/// bit-identical to [`run_experiment`]'s for the same configuration,
/// regardless of worker count or steal order. `on_run` is never invoked for
/// a failing seed.
///
/// # Errors
///
/// Propagates configuration errors (surfaced deterministically, before any
/// run starts) and engine errors; the first failing seed in batch order
/// wins.
pub fn run_experiment_with<F>(config: &ExperimentConfig, on_run: F) -> Result<ExperimentResult>
where
    F: Fn(&RunSummary) + Sync,
{
    run_experiment_impl(config, &on_run, None)
}

/// [`run_experiment_with`] with cross-seed metric aggregation: every chunk
/// runs with a chunk-local [`MetricsRegistry`] attached to the seed-batched
/// engine, and the chunk registries are merged into one as workers finish.
/// Because a registry merge is commutative and associative (elementwise
/// `u64` addition), the merged registry is bit-identical regardless of
/// worker count or completion order — the same invariant the summaries
/// already enjoy. Summaries and the returned [`ExperimentResult`] are
/// bit-identical to [`run_experiment_with`]'s.
///
/// # Errors
///
/// Exactly as [`run_experiment_with`].
pub fn run_experiment_metrics<F>(
    config: &ExperimentConfig,
    on_run: F,
) -> Result<(ExperimentResult, MetricsRegistry)>
where
    F: Fn(&RunSummary) + Sync,
{
    let merged = Mutex::new(MetricsRegistry::new());
    let result = run_experiment_impl(config, &on_run, Some(&merged))?;
    let metrics = merged.into_inner().expect("metrics mutex poisoned");
    Ok((result, metrics))
}

/// The shared executor behind [`run_experiment_with`] and
/// [`run_experiment_metrics`]: the single-point special case of the
/// cross-point packed executor. A single point's seeds are trivially
/// shape-compatible, so the pack plan degenerates to the historical
/// "chunks of up to [`BATCH_WIDTH`] consecutive seeds" schedule and the
/// results stay bit-identical to every earlier release.
fn run_experiment_impl<F>(
    config: &ExperimentConfig,
    on_run: &F,
    metrics: Option<&Mutex<MetricsRegistry>>,
) -> Result<ExperimentResult>
where
    F: Fn(&RunSummary) + Sync,
{
    run_packed_impl(
        std::slice::from_ref(config),
        &|_point, summary: &RunSummary| on_run(summary),
        metrics,
    )
    .pop()
    .expect("one result per experiment point")
}

/// Runs several experiment points as **one** cross-point packed pool:
/// every `(point, seed)` pair is lowered up front (point-major,
/// seed-minor), and consecutive lanes whose lowered configurations are
/// [`shape_compatible`] — same `n`, `f`, model, and observe level — are
/// packed into shared [`BatchEngine`] batches of up to [`BATCH_WIDTH`]
/// lanes. A point whose seed batch does not fill its last batch is topped
/// up with the next compatible point's first seeds, so sweeping many
/// small points no longer pays one under-full batch per point (the
/// "occupancy cliff"): mean lane occupancy is governed by the *total*
/// lane count, not the per-point seed count.
///
/// Per-seed summaries are bit-identical to [`run_experiment`] on each
/// point alone, for every worker count and pack boundary — the packed
/// engine proves per-lane equivalence with the scalar engine. Results
/// come back **per point**, aligned with `configs`; a point whose
/// lowering or runs fail carries its first failing seed's error (in
/// seed-batch order) without disturbing its neighbours, so callers keep
/// point-level error attribution.
///
/// `on_run` receives `(point index, summary)` for every completed run,
/// in completion order, on the worker that produced it.
pub fn run_packed_experiments<F>(
    configs: &[ExperimentConfig],
    on_run: F,
) -> Vec<Result<ExperimentResult>>
where
    F: Fn(usize, &RunSummary) + Sync,
{
    run_packed_impl(configs, &on_run, None)
}

/// [`run_packed_experiments`] with cross-run metric aggregation into one
/// [`MetricsRegistry`], merged exactly as [`run_experiment_metrics`]
/// merges — elementwise counter addition, so the registry is
/// bit-identical for every worker count and completion order.
pub fn run_packed_experiments_metrics<F>(
    configs: &[ExperimentConfig],
    on_run: F,
) -> (Vec<Result<ExperimentResult>>, MetricsRegistry)
where
    F: Fn(usize, &RunSummary) + Sync,
{
    let merged = Mutex::new(MetricsRegistry::new());
    let results = run_packed_impl(configs, &on_run, Some(&merged));
    let metrics = merged.into_inner().expect("metrics mutex poisoned");
    (results, metrics)
}

/// Mean lane occupancy of the pack plan [`run_packed_experiments`] would
/// execute for `configs`: total lanes over `packs × BATCH_WIDTH` slots.
/// `1.0` means every batch launch runs completely full; the experiment
/// itself is not run. An empty plan (no seeds anywhere) is vacuously
/// full.
///
/// # Errors
///
/// Propagates the first lowering error in point-major, seed-minor order.
pub fn mean_pack_occupancy(configs: &[ExperimentConfig]) -> Result<f64> {
    let mut lanes = 0usize;
    let mut packs = 0usize;
    // Walk the point-major lane list exactly as the planner does, but keep
    // only the running shape of the open pack.
    let mut open: Option<(ProtocolConfig, usize)> = None;
    for config in configs {
        for &seed in &config.seeds {
            let mut p = config.protocol_config(seed)?;
            p.observe = Observe::Summary;
            lanes += 1;
            open = Some(match open.take() {
                Some((shape, width)) if width < BATCH_WIDTH && shape_compatible(&shape, &p) => {
                    (shape, width + 1)
                }
                Some(_) => {
                    packs += 1;
                    (p, 1)
                }
                None => (p, 1),
            });
        }
    }
    if open.is_some() {
        packs += 1;
    }
    if lanes == 0 {
        return Ok(1.0);
    }
    Ok(lanes as f64 / (packs * BATCH_WIDTH) as f64)
}

/// Splits the point-major lane list into contiguous packs of up to
/// [`BATCH_WIDTH`] shape-compatible lanes. Compatibility is an
/// equivalence (field equality), so comparing against the pack's first
/// lane suffices.
fn plan_packs(lanes: &[PackedLane]) -> Vec<std::ops::Range<usize>> {
    let mut packs = Vec::new();
    let mut start = 0;
    for i in 0..lanes.len() {
        if i - start == BATCH_WIDTH
            || (i > start && !shape_compatible(&lanes[start].config, &lanes[i].config))
        {
            packs.push(start..i);
            start = i;
        }
    }
    if start < lanes.len() {
        packs.push(start..lanes.len());
    }
    packs
}

/// The shared executor behind every summary-level entry point.
///
/// Lowering is validated up front, per point: a point whose lowering
/// fails is born-failed (its `on_run` never fires) and contributes no
/// lanes, while its neighbours still execute. The surviving lanes run
/// through [`plan_packs`] batches spread across the rayon pool; pack
/// results flatten back in point-major, seed-minor order because packs
/// are contiguous ranges of that list.
fn run_packed_impl<F>(
    configs: &[ExperimentConfig],
    on_run: &F,
    metrics: Option<&Mutex<MetricsRegistry>>,
) -> Vec<Result<ExperimentResult>>
where
    F: Fn(usize, &RunSummary) + Sync,
{
    // Only summaries leave this function, and summaries are bit-identical
    // across observability levels, so the engine always runs at
    // `Observe::Summary` — the allocation-free steady state — regardless
    // of each description's level.
    let mut lowered: Vec<Option<mbaa_types::Error>> = Vec::with_capacity(configs.len());
    let mut lanes: Vec<PackedLane> = Vec::new();
    // `points[i]` is the point index of `lanes[i]` — kept as a parallel
    // vector so pack ranges can borrow `lanes` as a contiguous slice.
    let mut points: Vec<usize> = Vec::new();
    for (point, config) in configs.iter().enumerate() {
        let lowering: Result<Vec<PackedLane>> = config
            .seeds
            .iter()
            .map(|&seed| {
                config.protocol_config(seed).map(|mut p| {
                    p.observe = Observe::Summary;
                    PackedLane {
                        config: p,
                        inputs: config.workload.generate(config.n, seed),
                    }
                })
            })
            .collect();
        match lowering {
            Ok(point_lanes) => {
                lowered.push(None);
                points.extend(std::iter::repeat_n(point, point_lanes.len()));
                lanes.extend(point_lanes);
            }
            Err(e) => lowered.push(Some(e)),
        }
    }
    let packs = plan_packs(&lanes);
    let pack_runs: Vec<Vec<Result<RunSummary>>> = packs
        .into_par_iter()
        .map(|range| {
            let outcomes = match metrics {
                Some(sink) => {
                    let mut local = MetricsRegistry::new();
                    let outcomes =
                        BatchEngine::run_packed_observed(&lanes[range.clone()], &mut local);
                    // Merge order across packs is completion order, which
                    // rayon does not fix — safe because the merge is
                    // order-independent (see `MetricsRegistry::merge`).
                    sink.lock().expect("metrics mutex poisoned").merge(&local);
                    outcomes
                }
                None => BatchEngine::run_packed(&lanes[range.clone()]),
            };
            outcomes
                .into_iter()
                .zip(range)
                .map(|(outcome, index)| {
                    let summary = RunSummary::from_outcome(lanes[index].config.seed, &outcome?);
                    on_run(points[index], &summary);
                    Ok(summary)
                })
                .collect()
        })
        .collect();
    // Scatter the point-major flat stream back into per-point results; the
    // first failing seed of a point (in seed-batch order) wins its slot.
    let mut per_point: Vec<Result<Vec<RunSummary>>> =
        configs.iter().map(|_| Ok(Vec::new())).collect();
    let mut flat = pack_runs.into_iter().flatten();
    for &point in &points {
        let run = flat.next().expect("one summary per planned lane");
        if let Ok(runs) = per_point[point].as_mut() {
            match run {
                Ok(summary) => runs.push(summary),
                Err(e) => per_point[point] = Err(e),
            }
        }
    }
    configs
        .iter()
        .zip(lowered)
        .zip(per_point)
        .map(|((config, lowering_error), runs)| match lowering_error {
            Some(e) => Err(e),
            None => Ok(ExperimentResult {
                config: config.clone(),
                runs: runs?,
            }),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A literal lowered form, mirroring what `mbaa::Scenario` produces.
    fn point(
        model: MobileModel,
        n: usize,
        f: usize,
        seeds: std::ops::Range<u64>,
    ) -> ExperimentConfig {
        ExperimentConfig {
            model,
            n,
            f,
            epsilon: 1e-3,
            max_rounds: 300,
            mobility: MobilityStrategy::TargetExtremes,
            corruption: CorruptionStrategy::split_attack(),
            topology: Topology::Complete,
            schedule: None,
            link_faults: LinkFaultPlan::default(),
            disconnection: DisconnectionPolicy::default(),
            function: None,
            seeds: seeds.collect(),
            workload: Workload::default(),
            allow_bound_violation: false,
            observe: Observe::default(),
        }
    }

    #[test]
    fn experiment_runs_every_seed() {
        let config = point(MobileModel::Buhrman, 7, 2, 0..4);
        let result = run_experiment(&config).unwrap();
        assert_eq!(result.runs.len(), 4);
        assert!(result.all_succeeded());
        assert_eq!(result.success_rate(), 1.0);
        assert!(result.mean_rounds().unwrap() >= 1.0);
    }

    #[test]
    fn below_bound_requires_explicit_opt_in() {
        let config = point(MobileModel::Garay, 8, 2, 0..1);
        assert!(run_experiment(&config).is_err());

        let permissive = ExperimentConfig {
            allow_bound_violation: true,
            ..config
        };
        assert!(run_experiment(&permissive).is_ok());
    }

    #[test]
    fn every_model_succeeds_at_its_bound() {
        for model in MobileModel::ALL {
            let f = 1;
            let n = model.required_processes(f);
            let config = point(model, n, f, 0..3);
            let result = run_experiment(&config).unwrap();
            assert!(result.all_succeeded(), "{model} failed: {:?}", result.runs);
        }
    }

    #[test]
    fn custom_function_and_workload_are_used() {
        let config = ExperimentConfig {
            function: Some(MsrFunction::fault_tolerant_midpoint(1)),
            workload: Workload::Clustered {
                centers: vec![0.0, 0.5, 1.0],
                jitter: 0.01,
            },
            mobility: MobilityStrategy::Random,
            corruption: CorruptionStrategy::BoundaryDrag,
            ..point(MobileModel::Buhrman, 7, 1, 0..2)
        };
        let result = run_experiment(&config).unwrap();
        assert!(result.all_succeeded());
        // Every run records its initial diameter even when the contraction
        // factor is unmeasurable (exact agreement reached in one step).
        assert!(result.runs.iter().all(|r| r.initial_diameter > 0.0));
    }

    #[test]
    fn topology_is_recorded_and_threaded_through_lowering() {
        let config = ExperimentConfig {
            topology: Topology::Ring { k: 2 },
            ..point(MobileModel::Garay, 9, 1, 0..2)
        };
        let result = run_experiment(&config).unwrap();
        // Summary-level results stay self-describing: the topology rides
        // along in the recorded configuration.
        assert_eq!(result.config.topology, Topology::Ring { k: 2 });
        assert_eq!(result.runs.len(), 2);
        let protocol = config.protocol_config(0).unwrap();
        assert_eq!(protocol.topology, Topology::Ring { k: 2 });
    }

    #[test]
    fn schedule_and_link_faults_are_recorded_and_threaded_through_lowering() {
        let schedule = TopologySchedule::SeededChurn {
            base: Topology::Complete,
            flip_rate: 0.2,
        };
        let config = ExperimentConfig {
            schedule: Some(schedule.clone()),
            link_faults: LinkFaultPlan::new().omit_all(0.05),
            disconnection: DisconnectionPolicy::Record,
            ..point(MobileModel::Garay, 9, 1, 0..2)
        };
        let result = run_experiment(&config).unwrap();
        assert_eq!(result.config.schedule, Some(schedule.clone()));
        assert!(!result.config.link_faults.is_clean());
        assert_eq!(result.runs.len(), 2);
        let protocol = config.protocol_config(0).unwrap();
        assert_eq!(protocol.schedule, Some(schedule));
        assert!(!protocol.link_faults.is_clean());
        assert_eq!(protocol.disconnection, DisconnectionPolicy::Record);
    }

    #[test]
    fn empty_seed_batch_yields_empty_result() {
        let config = point(MobileModel::Buhrman, 4, 1, 0..0);
        let result = run_experiment(&config).unwrap();
        assert!(result.runs.is_empty());
        assert_eq!(result.success_rate(), 0.0);
        assert!(!result.all_succeeded());
        assert_eq!(result.mean_rounds(), None);
    }

    #[test]
    fn streaming_observer_sees_every_summary_and_results_match() {
        let config = point(MobileModel::Buhrman, 7, 2, 0..6);
        let seen = std::sync::Mutex::new(Vec::new());
        let streamed = run_experiment_with(&config, |s| seen.lock().unwrap().push(*s)).unwrap();
        let eager = run_experiment(&config).unwrap();
        assert_eq!(streamed, eager);
        // The observer saw exactly the returned summaries (in completion
        // order; seed order once sorted).
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable_by_key(|s| s.seed);
        assert_eq!(seen, streamed.runs);
    }

    #[test]
    fn streaming_observer_is_not_invoked_for_failing_configs() {
        let config = point(MobileModel::Garay, 8, 2, 0..3);
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let err = run_experiment_with(&config, |_| {
            calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert!(err.is_err());
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 0);
    }

    #[test]
    fn packed_cross_point_results_match_per_point_runs() {
        // Three shape-compatible points (same n/f/model) whose other knobs
        // all differ — ε, topology, round budget, seed batches.
        let configs = [
            point(MobileModel::Garay, 9, 1, 0..12),
            ExperimentConfig {
                epsilon: 1e-4,
                topology: Topology::Ring { k: 2 },
                ..point(MobileModel::Garay, 9, 1, 5..17)
            },
            ExperimentConfig {
                max_rounds: 200,
                ..point(MobileModel::Garay, 9, 1, 100..112)
            },
        ];
        let seen = std::sync::Mutex::new(Vec::new());
        let packed = run_packed_experiments(&configs, |point, summary| {
            seen.lock().unwrap().push((point, summary.seed));
        });
        // Every point's result is bit-identical to running it alone, even
        // though its lanes shared packs with its neighbours.
        for (config, result) in configs.iter().zip(packed) {
            assert_eq!(result.unwrap(), run_experiment(config).unwrap());
        }
        // The streaming callback attributed every run to its point.
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        let expected: Vec<(usize, u64)> = configs
            .iter()
            .enumerate()
            .flat_map(|(i, c)| c.seeds.iter().map(move |&s| (i, s)))
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn pack_plan_tops_up_tail_chunks_across_compatible_points() {
        // 3 points × 12 seeds = 36 lanes. Packed across points that is two
        // batch launches (32 + 4) — occupancy 36/64 — instead of the three
        // under-full per-point chunks (36/96) the old schedule paid.
        let compatible: Vec<ExperimentConfig> = (0..3)
            .map(|i| point(MobileModel::Garay, 9, 1, (i * 12)..(i * 12 + 12)))
            .collect();
        assert_eq!(mean_pack_occupancy(&compatible).unwrap(), 36.0 / 64.0);
        // Shape-incompatible neighbours still break packs at the boundary.
        let mixed = [
            point(MobileModel::Garay, 9, 1, 0..12),
            point(MobileModel::Garay, 13, 1, 0..12),
            point(MobileModel::Garay, 9, 1, 0..12),
        ];
        assert_eq!(mean_pack_occupancy(&mixed).unwrap(), 36.0 / 96.0);
        // No seeds anywhere: vacuously full.
        assert_eq!(
            mean_pack_occupancy(&[point(MobileModel::Garay, 9, 1, 0..0)]).unwrap(),
            1.0
        );
    }

    #[test]
    fn failing_point_does_not_disturb_its_neighbours() {
        let good = point(MobileModel::Garay, 9, 2, 0..3);
        // Below the bound without the explicit opt-in: lowering fails.
        let bad = point(MobileModel::Garay, 8, 2, 0..3);
        let results = run_packed_experiments(&[good.clone(), bad, good.clone()], |_, _| {});
        assert!(results[1].is_err());
        let alone = run_experiment(&good).unwrap();
        assert_eq!(results[0].as_ref().unwrap(), &alone);
        assert_eq!(results[2].as_ref().unwrap(), &alone);
    }

    #[test]
    fn parallel_execution_matches_run_order() {
        // Seeds are recorded in batch order regardless of which thread
        // finished first.
        let config = point(MobileModel::Garay, 9, 2, 0..16);
        let result = run_experiment(&config).unwrap();
        let seeds: Vec<u64> = result.runs.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, (0..16).collect::<Vec<u64>>());
        // And repeated execution is bit-identical.
        assert_eq!(result, run_experiment(&config).unwrap());
    }
}
