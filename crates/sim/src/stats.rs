//! Summary statistics over experiment measurements.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of measurements.
///
/// # Example
///
/// ```
/// use mbaa_sim::stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert_eq!(s.median, 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (midpoint of central pair for even counts).
    pub median: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes the summary of a sample, or `None` when it is empty or
    /// contains non-finite values.
    #[must_use]
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;

        let mut sorted = samples.to_vec();
        // Finiteness is checked above, so total_cmp agrees with the
        // numeric order; unstable sorting of equal floats cannot move the
        // median.
        sorted.sort_unstable_by(f64::total_cmp);
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };

        Some(Summary {
            count,
            mean,
            median,
            min: sorted[0],
            max: sorted[count - 1],
            std_dev: variance.sqrt(),
        })
    }
}

/// The relative difference `|a - b| / max(|a|, |b|)`, or `0.0` when both are
/// zero. Used to compare mobile and static diameter trajectories.
#[must_use]
pub fn relative_difference(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.median, 4.5);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.std_dev, 2.0);
    }

    #[test]
    fn summary_of_odd_sample_and_singleton() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.median, 2.0);

        let one = Summary::of(&[7.0]).unwrap();
        assert_eq!(one.mean, 7.0);
        assert_eq!(one.std_dev, 0.0);
    }

    #[test]
    fn summary_rejects_empty_and_non_finite() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        assert!(Summary::of(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn relative_difference_behaviour() {
        assert_eq!(relative_difference(0.0, 0.0), 0.0);
        assert_eq!(relative_difference(1.0, 1.0), 0.0);
        assert!((relative_difference(1.0, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(relative_difference(-2.0, 2.0), 2.0);
    }
}
