//! Initial-value workload generators.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use mbaa_types::Value;

/// How the initial values of an experiment are generated.
///
/// The paper's motivating applications supply the workload shapes: evenly
/// spread readings (temperature sensors across a gradient), clustered
/// readings with a few stragglers (well-calibrated sensors plus drifting
/// ones), and uniformly random positions (robots scattered over a segment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// Process `i` starts with `lo + i·(hi-lo)/(n-1)` — an even spread, the
    /// hardest deterministic case for convergence time.
    UniformSpread {
        /// Smallest initial value.
        lo: f64,
        /// Largest initial value.
        hi: f64,
    },
    /// Values are drawn uniformly at random from `[lo, hi]`, seeded per run.
    RandomUniform {
        /// Lower bound of the draw.
        lo: f64,
        /// Upper bound of the draw.
        hi: f64,
    },
    /// Processes are split evenly across the given cluster centres (sensor
    /// banks reading almost the same value), cycling through the list.
    Clustered {
        /// The cluster centres.
        centers: Vec<f64>,
        /// Half-width of each cluster.
        jitter: f64,
    },
    /// Explicit per-process values (real datasets, bespoke examples). The
    /// seed is ignored; the length must equal `n` at generation time.
    Fixed {
        /// The value of every process, in process order.
        values: Vec<Value>,
    },
}

impl Workload {
    /// Generates the initial value of every process for one seeded run.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, if bounds are not finite, if a clustered
    /// workload has no centres, or if a fixed workload does not hold
    /// exactly `n` values.
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Value> {
        assert!(n > 0, "workload needs at least one process");
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            Workload::UniformSpread { lo, hi } => {
                assert!(
                    lo.is_finite() && hi.is_finite() && lo <= hi,
                    "invalid spread bounds"
                );
                if n == 1 {
                    return vec![Value::new(*lo)];
                }
                (0..n)
                    .map(|i| Value::new(lo + (hi - lo) * i as f64 / (n - 1) as f64))
                    .collect()
            }
            Workload::RandomUniform { lo, hi } => {
                assert!(
                    lo.is_finite() && hi.is_finite() && lo <= hi,
                    "invalid uniform bounds"
                );
                (0..n)
                    .map(|_| Value::new(rng.random_range(*lo..=*hi)))
                    .collect()
            }
            Workload::Clustered { centers, jitter } => {
                assert!(
                    !centers.is_empty(),
                    "clustered workload needs at least one centre"
                );
                assert!(
                    jitter.is_finite() && *jitter >= 0.0,
                    "jitter must be finite and >= 0"
                );
                (0..n)
                    .map(|i| {
                        let center = centers[i % centers.len()];
                        let offset = if *jitter == 0.0 {
                            0.0
                        } else {
                            rng.random_range(-*jitter..=*jitter)
                        };
                        Value::new(center + offset)
                    })
                    .collect()
            }
            Workload::Fixed { values } => {
                assert_eq!(
                    values.len(),
                    n,
                    "fixed workload holds {} values for {n} processes",
                    values.len()
                );
                values.clone()
            }
        }
    }
}

impl Default for Workload {
    fn default() -> Self {
        Workload::UniformSpread { lo: 0.0, hi: 1.0 }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Workload::UniformSpread { lo, hi } => write!(f, "spread[{lo}, {hi}]"),
            Workload::RandomUniform { lo, hi } => write!(f, "uniform[{lo}, {hi}]"),
            Workload::Clustered { centers, jitter } => {
                write!(f, "clustered({} centres, ±{jitter})", centers.len())
            }
            Workload::Fixed { values } => write!(f, "fixed({} values)", values.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_spread_covers_the_interval() {
        let vs = Workload::UniformSpread { lo: 0.0, hi: 1.0 }.generate(5, 0);
        assert_eq!(vs.len(), 5);
        assert_eq!(vs[0], Value::new(0.0));
        assert_eq!(vs[4], Value::new(1.0));
        assert_eq!(vs[2], Value::new(0.5));
        // Single process degenerates to the lower bound.
        assert_eq!(
            Workload::UniformSpread { lo: 2.0, hi: 3.0 }.generate(1, 0),
            vec![Value::new(2.0)]
        );
    }

    #[test]
    fn random_uniform_is_bounded_and_seeded() {
        let w = Workload::RandomUniform { lo: -1.0, hi: 1.0 };
        let a = w.generate(20, 42);
        let b = w.generate(20, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.get() >= -1.0 && v.get() <= 1.0));
        assert_ne!(a, w.generate(20, 43));
    }

    #[test]
    fn clustered_cycles_over_centres() {
        let w = Workload::Clustered {
            centers: vec![0.0, 10.0],
            jitter: 0.0,
        };
        let vs = w.generate(4, 1);
        assert_eq!(
            vs,
            vec![
                Value::new(0.0),
                Value::new(10.0),
                Value::new(0.0),
                Value::new(10.0)
            ]
        );

        let jittered = Workload::Clustered {
            centers: vec![5.0],
            jitter: 0.5,
        }
        .generate(8, 3);
        assert!(jittered.iter().all(|v| (v.get() - 5.0).abs() <= 0.5));
    }

    #[test]
    fn fixed_returns_the_values_verbatim_for_any_seed() {
        let values: Vec<Value> = (0..4).map(|i| Value::new(i as f64)).collect();
        let w = Workload::Fixed {
            values: values.clone(),
        };
        assert_eq!(w.generate(4, 0), values);
        assert_eq!(w.generate(4, 99), values);
        assert_eq!(w.to_string(), "fixed(4 values)");
    }

    #[test]
    #[should_panic(expected = "fixed workload holds 2 values")]
    fn fixed_with_wrong_arity_panics() {
        let w = Workload::Fixed {
            values: vec![Value::new(0.0), Value::new(1.0)],
        };
        let _ = w.generate(3, 0);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_panics() {
        let _ = Workload::default().generate(0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one centre")]
    fn empty_centres_panics() {
        let _ = Workload::Clustered {
            centers: vec![],
            jitter: 0.0,
        }
        .generate(3, 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Workload::default().to_string(), "spread[0, 1]");
        assert_eq!(
            Workload::Clustered {
                centers: vec![1.0, 2.0],
                jitter: 0.1
            }
            .to_string(),
            "clustered(2 centres, ±0.1)"
        );
    }
}
