//! The lower-bound constructions of Theorems 3–6, executable.
//!
//! Each theorem shows that no algorithm solves *Simple Approximate
//! Agreement* (Fischer–Lynch–Merritt) when `n ≤ c·f` for the model's
//! multiplier `c`, by exhibiting three executions:
//!
//! * **E1** — the correct processes all propose 0; agreement and validity
//!   force every non-faulty process to choose 0.
//! * **E2** — the correct processes all propose 1; they must choose 1.
//! * **E3** — the correct processes are split between 0 and 1 and the
//!   Byzantine agent sends 0 to one half and 1 to the other. Each half
//!   gathers a multiset *identical* to the one it gathered in E1 (resp. E2),
//!   so a deterministic algorithm must answer 0 (resp. 1) — but then two
//!   correct processes choose values a full input-spread apart, violating
//!   agreement.
//!
//! [`LowerBoundScenario::for_model`] builds the three executions' multisets
//! for each model at exactly `n = c·f` processes, and
//! [`LowerBoundScenario::evaluate`] runs a concrete deterministic voting
//! function over them, reporting which property breaks. The indistinguishable
//! multisets are what make the argument model-specific: Garay's silent cured
//! processes shrink the multisets, Bonnet's unaware cured processes inject a
//! symmetric wrong value, Sasaki's poisoned queues double the number of
//! asymmetric actors, and Buhrman reduces to the classic `3f` scenario.

use std::fmt;

use serde::{Deserialize, Serialize};

use mbaa_msr::VotingFunction;
use mbaa_types::{MobileModel, Value, ValueMultiset};

/// The multisets gathered by the representative correct processes in the
/// three executions of a lower-bound proof.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LowerBoundScenario {
    /// The model whose bound is being demonstrated.
    pub model: MobileModel,
    /// The number of agents `f`.
    pub f: usize,
    /// The number of processes, exactly `c·f` (the largest impossible `n`).
    pub n: usize,
    /// The multiset every non-faulty process gathers in execution E1.
    pub e1: ValueMultiset,
    /// The multiset every non-faulty process gathers in execution E2.
    pub e2: ValueMultiset,
    /// The multiset gathered in E3 by the group that also saw `e1`.
    pub e3_low_group: ValueMultiset,
    /// The multiset gathered in E3 by the group that also saw `e2`.
    pub e3_high_group: ValueMultiset,
}

/// The verdict of running a deterministic voting function over a
/// [`LowerBoundScenario`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LowerBoundWitness {
    /// The function's decision on the E1 multiset.
    pub decision_e1: Option<Value>,
    /// The function's decision on the E2 multiset.
    pub decision_e2: Option<Value>,
    /// The decisions of the two E3 groups (forced equal to `decision_e1` and
    /// `decision_e2` by indistinguishability).
    pub decision_e3: (Option<Value>, Option<Value>),
    /// `true` when the E1 decision is not 0 — validity (or termination)
    /// breaks in E1, where every correct process proposed 0.
    pub violates_e1: bool,
    /// `true` when the E2 decision is not 1.
    pub violates_e2: bool,
    /// `true` when the two E3 decisions are at least the full input spread
    /// apart — the agreement property of Simple Approximate Agreement
    /// requires them to be *strictly* closer than the spread of the correct
    /// inputs (which is 1 in E3).
    pub violates_e3_agreement: bool,
}

impl LowerBoundWitness {
    /// Returns `true` when at least one of the three executions violates the
    /// Simple Approximate Agreement specification — which the theorems show
    /// must happen for *every* algorithm at `n ≤ c·f`.
    #[must_use]
    pub fn violates_specification(&self) -> bool {
        self.violates_e1 || self.violates_e2 || self.violates_e3_agreement
    }
}

impl fmt::Display for LowerBoundWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "E1 -> {:?}, E2 -> {:?}, E3 -> ({:?}, {:?}), violation: {}",
            self.decision_e1.map(Value::get),
            self.decision_e2.map(Value::get),
            self.decision_e3.0.map(Value::get),
            self.decision_e3.1.map(Value::get),
            self.violates_specification()
        )
    }
}

/// Builds a multiset containing `zeros` copies of 0 and `ones` copies of 1.
fn binary_multiset(zeros: usize, ones: usize) -> ValueMultiset {
    std::iter::repeat_n(Value::ZERO, zeros)
        .chain(std::iter::repeat_n(Value::ONE, ones))
        .collect()
}

impl LowerBoundScenario {
    /// Constructs the Theorem 3–6 scenario for the given model with `f`
    /// agents, at `n = c·f` processes.
    ///
    /// # Panics
    ///
    /// Panics if `f == 0` (the impossibility needs at least one agent).
    #[must_use]
    pub fn for_model(model: MobileModel, f: usize) -> Self {
        assert!(
            f >= 1,
            "the lower-bound construction needs at least one agent"
        );
        let n = model.impossibility_threshold(f);
        // Per model: the number of values a non-faulty process hears from
        // the groups of the construction.
        //   correct_zero / correct_one — values heard from the two correct
        //     groups (equal sizes);
        //   cured_symmetric — values heard from unaware cured processes
        //     (Bonnet only): they broadcast the corrupted value 1 in E1/E3
        //     and 0 in E2;
        //   byzantine — values heard from the asymmetric actors (agents,
        //     plus poisoned cured processes under Sasaki).
        let (correct_group, cured_symmetric, byzantine) = match model {
            // n = 4f: f faulty + f cured(silent) + 2f correct.
            MobileModel::Garay => (f, 0, f),
            // n = 5f: f faulty + f cured(symmetric) + 3f correct. One correct
            // group of f is pivotal on each side; the remaining f correct
            // processes propose 0 in E3 and are counted with the zero side.
            MobileModel::Bonnet => (f, f, f),
            // n = 6f: 2f asymmetric actors + 4f correct.
            MobileModel::Sasaki => (2 * f, 0, 2 * f),
            // n = 3f: f faulty + 2f correct.
            MobileModel::Buhrman => (f, 0, f),
        };

        // Sizes of the two pivotal correct groups (the ones whose multisets
        // must coincide with E1/E2). Under Bonnet there is a third correct
        // group that keeps proposing 0; fold it into the zero-count below.
        let extra_zero_correct = match model {
            MobileModel::Bonnet => f,
            _ => 0,
        };

        // E1: every correct process proposes 0; the asymmetric actors send 1;
        // unaware cured processes broadcast their corrupted value 1.
        let e1 = binary_multiset(
            2 * correct_group + extra_zero_correct,
            byzantine + cured_symmetric,
        );
        // E2 mirrors E1 with 0 and 1 swapped.
        let e2 = binary_multiset(
            byzantine + cured_symmetric,
            2 * correct_group + extra_zero_correct,
        );
        // E3: one correct group proposes 0, the other proposes 1, the third
        // (Bonnet) group proposes 0, cured processes still hold 1, and the
        // asymmetric actors send 0 to the zero group and 1 to the one group.
        let e3_low_group = binary_multiset(
            correct_group + extra_zero_correct + byzantine,
            correct_group + cured_symmetric,
        );
        let e3_high_group = binary_multiset(
            correct_group + extra_zero_correct,
            correct_group + cured_symmetric + byzantine,
        );

        LowerBoundScenario {
            model,
            f,
            n,
            e1,
            e2,
            e3_low_group,
            e3_high_group,
        }
    }

    /// Returns `true` when the E3 multisets are indistinguishable from the
    /// E1/E2 ones — the heart of the impossibility argument.
    #[must_use]
    pub fn is_indistinguishable(&self) -> bool {
        self.e3_low_group == self.e1 && self.e3_high_group == self.e2
    }

    /// Evaluates a deterministic voting function over the scenario.
    ///
    /// By indistinguishability the function's E3 answers are its E1/E2
    /// answers, so the witness reports whether it breaks validity in E1/E2
    /// or agreement in E3 — one of which must happen.
    #[must_use]
    pub fn evaluate(&self, function: &dyn VotingFunction) -> LowerBoundWitness {
        let decision_e1 = function.apply(&self.e1);
        let decision_e2 = function.apply(&self.e2);
        let decision_e3 = (
            function.apply(&self.e3_low_group),
            function.apply(&self.e3_high_group),
        );

        // In E1 every correct process proposed 0: validity pins the decision
        // to exactly 0 (and a missing decision breaks termination).
        let violates_e1 = decision_e1 != Some(Value::ZERO);
        let violates_e2 = decision_e2 != Some(Value::ONE);
        // In E3 the correct inputs are 0 and 1: Simple Approximate Agreement
        // requires the chosen values to be strictly less than 1 apart.
        let violates_e3_agreement = match decision_e3 {
            (Some(lo), Some(hi)) => lo.distance(hi) >= 1.0,
            _ => true,
        };

        LowerBoundWitness {
            decision_e1,
            decision_e2,
            decision_e3,
            violates_e1,
            violates_e2,
            violates_e3_agreement,
        }
    }
}

impl fmt::Display for LowerBoundScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lower bound at n = {} with f = {}",
            self.model, self.n, self.f
        )
    }
}

/// Builds the scenarios of all four theorems for the given `f`.
#[must_use]
pub fn all_scenarios(f: usize) -> Vec<LowerBoundScenario> {
    MobileModel::ALL
        .iter()
        .map(|&model| LowerBoundScenario::for_model(model, f))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbaa_msr::{MedianVoting, MsrFunction};

    #[test]
    fn scenario_sizes_match_the_theorems() {
        for f in 1..=3 {
            let garay = LowerBoundScenario::for_model(MobileModel::Garay, f);
            assert_eq!(garay.n, 4 * f);
            // Multiset size = n - (silent cured) = 3f.
            assert_eq!(garay.e1.len(), 3 * f);

            let bonnet = LowerBoundScenario::for_model(MobileModel::Bonnet, f);
            assert_eq!(bonnet.n, 5 * f);
            assert_eq!(bonnet.e1.len(), 5 * f);

            let sasaki = LowerBoundScenario::for_model(MobileModel::Sasaki, f);
            assert_eq!(sasaki.n, 6 * f);
            assert_eq!(sasaki.e1.len(), 6 * f);

            let buhrman = LowerBoundScenario::for_model(MobileModel::Buhrman, f);
            assert_eq!(buhrman.n, 3 * f);
            assert_eq!(buhrman.e1.len(), 3 * f);
        }
    }

    #[test]
    fn bonnet_multisets_match_the_paper_text() {
        // With f = 1 the paper's multisets are {1,1,0,0,0} and {0,0,1,1,1}.
        let s = LowerBoundScenario::for_model(MobileModel::Bonnet, 1);
        assert_eq!(s.e1.count(Value::ZERO), 3);
        assert_eq!(s.e1.count(Value::ONE), 2);
        assert_eq!(s.e2.count(Value::ZERO), 2);
        assert_eq!(s.e2.count(Value::ONE), 3);
    }

    #[test]
    fn garay_multisets_match_the_paper_text() {
        // With f = 1 the paper's multisets are {0,0,1} and {1,0,1}.
        let s = LowerBoundScenario::for_model(MobileModel::Garay, 1);
        assert_eq!(s.e1.count(Value::ZERO), 2);
        assert_eq!(s.e1.count(Value::ONE), 1);
        assert_eq!(s.e2.count(Value::ZERO), 1);
        assert_eq!(s.e2.count(Value::ONE), 2);
    }

    #[test]
    fn e3_is_indistinguishable_from_e1_and_e2_in_every_model() {
        for f in 1..=3 {
            for scenario in all_scenarios(f) {
                assert!(
                    scenario.is_indistinguishable(),
                    "{scenario} is distinguishable"
                );
            }
        }
    }

    #[test]
    fn every_voting_function_violates_the_specification_at_the_bound() {
        let functions: Vec<Box<dyn VotingFunction>> = vec![
            Box::new(MsrFunction::dolev_mean(0)),
            Box::new(MsrFunction::dolev_mean(1)),
            Box::new(MsrFunction::dolev_mean(2)),
            Box::new(MsrFunction::fault_tolerant_midpoint(1)),
            Box::new(MsrFunction::reduced_median(1)),
            Box::new(MedianVoting::new()),
        ];
        for f in 1..=2 {
            for scenario in all_scenarios(f) {
                for function in &functions {
                    let witness = scenario.evaluate(function.as_ref());
                    assert!(
                        witness.violates_specification(),
                        "{} escaped the {scenario} impossibility: {witness}",
                        function.name()
                    );
                }
            }
        }
    }

    #[test]
    fn witness_reports_the_expected_violation_shape_for_trimmed_mean() {
        // The MSR instance sized for Garay (τ = f) cannot decide exactly 0 in
        // E1 at n = 4f because the surviving multiset still contains planted
        // ones — so the violation shows up in E1/E2, not in E3.
        let scenario = LowerBoundScenario::for_model(MobileModel::Garay, 1);
        let witness = scenario.evaluate(&MsrFunction::dolev_mean(1));
        assert!(witness.violates_e1 || witness.violates_e3_agreement);
        assert!(witness.to_string().contains("violation: true"));
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn zero_agents_panics() {
        let _ = LowerBoundScenario::for_model(MobileModel::Garay, 0);
    }

    #[test]
    fn display_mentions_model_and_size() {
        let s = LowerBoundScenario::for_model(MobileModel::Sasaki, 2);
        let text = s.to_string();
        assert!(text.contains("Sasaki"));
        assert!(text.contains("12"));
    }
}
