//! The seed-batched engine: k seeds advanced in lockstep through a single
//! round loop.
//!
//! A sweep evaluates the *same* [`ProtocolConfig`] under many seeds, and
//! the scalar [`MobileEngine`] pays the full per-round machinery — fault
//! planning, outbox construction, an `n × n` exchange, and `n` sorts — once
//! per seed per round. [`BatchEngine`] amortizes that work across a batch
//! of seeds ("lanes") by advancing every lane through round `r` before any
//! lane sees round `r + 1`.
//!
//! # Structure-of-arrays layout
//!
//! Per-process state is stored **lane-major** in flat arrays: lane `l`'s
//! votes occupy `votes[l * n .. (l + 1) * n]`, and likewise for the fault
//! states. Per-lane control state (the adversary with its RNG stream, the
//! convergence report, the traffic statistics) lives in one flat `Vec` of
//! lane records. All lanes share a single round scratch — one
//! [`RoundFaultPlan`], one outbox array, one packed delivery-row arena, one
//! sort buffer — because the scratch is fully overwritten per lane per
//! round; only the RNG streams and the accumulated per-lane results differ.
//!
//! On the **complete-topology fast path** (no schedule, clean link-fault
//! plan — the configuration every paper table sweeps) the engine never
//! materializes outboxes or delivery rows for well-behaved senders at all:
//! each round classifies senders into *broadcasters* (one shared, sorted
//! value buffer per lane-round), *silent* processes, and at most `2f`
//! *special* senders with genuinely per-receiver outboxes. Each receiver's
//! multiset is then the sorted common buffer merged with its few special
//! slots, and the k-wide [`mbaa_msr::MsrFunction::apply_sorted_lanes`] folds
//! `mean(Sel(Red(N)))` over all receivers of a lane in one pass. This
//! replaces `n` sorts and `2 n²` slot writes per lane-round with one sort
//! and `n` linear merges.
//!
//! On the **general path** (partial topologies, schedules, link faults) the
//! lanes of each distinct network *description* share one
//! [`SharedRealization`]: the realized graphs, closed-neighbourhood lists,
//! compiled fault matrices, and per-phase connectivity are built once per
//! batch instead of once per lane, and each lane keeps only a tiny
//! [`mbaa_net::LaneDelivery`] (its seed-keyed churn/omission draw streams
//! and delay pipes). Each lane round classifies senders into
//! [`LaneSend`]s — broadcasters never materialize an outbox — and the
//! exchange collects each active receiver's values directly into packed
//! [`DeliveryRows`], which feed the same k-wide MSR fold as the fast path.
//! Descriptions that realize per seed ([`Topology::RandomRegular`]
//! anywhere) fall back to one scalar network per lane inside the same
//! lockstep loop.
//!
//! # Batch vs. scalar selection
//!
//! The batch path is a pure execution strategy: per-seed outcomes are
//! **bit-identical** to running [`MobileEngine`] once per seed, for every
//! model, adversary, topology, schedule, and link-fault plan (enforced by
//! the `batch_engine` equivalence battery). The simulation layer
//! (`mbaa_sim::run_experiment`) routes a point through [`BatchEngine`]
//! whenever it has ≥ 2 seeds at [`Observe::Summary`](crate::Observe); runs
//! that record snapshots or traces (`Observe::Snapshots` / `Full`) and
//! single-seed batches delegate to the scalar engine lane by lane, so
//! observability is never silently degraded. [`BatchEngine::run`] applies
//! the same rule internally, which makes it total: any configuration can
//! be handed to it.
//!
//! # Cross-point packing
//!
//! Lanes need not come from one configuration: [`PackedLane`] pairs each
//! lane with its *own* full `ProtocolConfig` (whose `seed` field is the
//! lane seed), and [`BatchEngine::run_packed`] advances a mixed pack in one
//! lockstep loop as long as every lane shares the batch **shape** — same
//! `n`, `f`, model, and observe level (checked by [`shape_compatible`]).
//! Everything else — ε, round budget, voting function, mobility,
//! corruption, topology, schedule, link faults — may differ per lane: the
//! loop runs to the largest round budget and each lane consults its own
//! configuration, so a sweep can top up a draining point's tail chunk with
//! seeds from the next compatible point instead of running it under-full.

use mbaa_adversary::{AdversaryView, MobileAdversary, RoundFaultPlan};
use mbaa_msr::{ConvergenceReport, VotingFunction};
use mbaa_net::{
    DeliveryRows, LaneDelivery, LaneSend, NetworkStats, NetworkTrace, Outbox, SharedRealization,
    SyncNetwork, Topology, TopologySchedule,
};
use mbaa_obs::{NoopObserver, Observer, Phase, RoundEvent};
use mbaa_types::{
    Error, FaultState, Interval, MobileModel, ProcessId, Result, Round, Value, ValueMultiset,
};

use crate::engine::{emit_run_events, fill_outbox, non_faulty_diameter, RoundScratch};
use crate::{MobileEngine, MobileRunOutcome, Observe, ProtocolConfig};

/// One lane of a batch: a seed and the initial values it starts from.
///
/// The seed replaces [`ProtocolConfig::seed`] for this lane — it drives the
/// lane's adversary stream and, where the topology or schedule is
/// randomized, the lane's graph realization, exactly as it would in a
/// scalar run of the re-seeded configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchLane {
    /// The lane's seed.
    pub seed: u64,
    /// The lane's initial values (one per process).
    pub inputs: Vec<Value>,
}

/// One lane of a cross-point pack: a full configuration (whose `seed`
/// field is the lane seed) and the initial values it starts from. See
/// [`BatchEngine::run_packed`].
#[derive(Debug, Clone, PartialEq)]
pub struct PackedLane {
    /// The lane's configuration; its `seed` is honoured as the lane seed.
    pub config: ProtocolConfig,
    /// The lane's initial values (one per process).
    pub inputs: Vec<Value>,
}

/// Whether two configurations share a batch **shape** and may therefore
/// ride in one [`BatchEngine::run_packed`] pack: same universe size, fault
/// bound, mobile model, and observe level. All other knobs are per-lane.
#[must_use]
pub fn shape_compatible(a: &ProtocolConfig, b: &ProtocolConfig) -> bool {
    a.n == b.n && a.f == b.f && a.model == b.model && a.observe == b.observe
}

/// One lane's identity inside a batch run: its configuration, its seed,
/// and its inputs. [`BatchEngine::run`] derives `k` specs from one shared
/// configuration; [`BatchEngine::run_packed`] derives them from `k`
/// configurations of equal shape.
struct LaneSpec<'a> {
    cfg: &'a ProtocolConfig,
    seed: u64,
    inputs: &'a [Value],
}

/// Per-lane control state: everything that is *not* shared across lanes.
struct LaneState {
    adversary: MobileAdversary,
    /// The lane's own scalar network — only on the general path's per-lane
    /// fallback (seed-dependent realizations). `None` on the fast path and
    /// on the shared-realization path, where `stats` is accounted directly.
    network: Option<SyncNetwork>,
    /// The lane's slice of a [`SharedRealization`]: seed-keyed draw
    /// streams and delay pipes. `Some` exactly on the shared path.
    delivery: Option<LaneDelivery>,
    /// Index of the lane's network-description group on the general path.
    group: usize,
    stats: NetworkStats,
    validity_envelope: Option<Interval>,
    report: Option<ConvergenceReport>,
    reached: bool,
    rounds_executed: usize,
    error: Option<Error>,
    done: bool,
    /// Telemetry bookkeeping (only read when an enabled observer is
    /// attached): the previous round's diameter (contraction ratios), the
    /// previous stats snapshot (per-round traffic deltas on the general
    /// path), the cured-corruption count of the current round, and the
    /// run total of corruptions.
    prev_diameter: f64,
    prev_stats: NetworkStats,
    corrupted_last: u32,
    corruptions: u64,
}

/// One distinct network description inside a pack: the exemplar
/// configuration that introduced it and, when the description is
/// seed-invariant, the realization every lane of the group shares.
struct NetGroup<'a> {
    cfg: &'a ProtocolConfig,
    realization: Option<SharedRealization>,
}

/// Whether two configurations describe the same network and can share one
/// realization group on the general path.
fn same_network_description(a: &ProtocolConfig, b: &ProtocolConfig) -> bool {
    a.topology == b.topology
        && a.schedule == b.schedule
        && a.link_faults == b.link_faults
        && a.disconnection == b.disconnection
}

/// Advances k seeds in lockstep. See the [module
/// documentation](crate::batch) for the layout and the selection rule;
/// per-seed results are bit-identical to the scalar [`MobileEngine`].
#[derive(Debug)]
pub struct BatchEngine {
    config: ProtocolConfig,
}

impl BatchEngine {
    /// Creates a batch engine for a validated configuration. The
    /// configuration's own `seed` is ignored — each [`BatchLane`] carries
    /// its own.
    #[must_use]
    pub fn new(config: ProtocolConfig) -> Self {
        BatchEngine { config }
    }

    /// The configuration this engine runs (its `seed` field is unused).
    #[must_use]
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Runs every lane to completion, returning one result per lane in
    /// lane order. Each lane's result — outcome or error — is exactly what
    /// a scalar [`MobileEngine`] run of the lane-seeded configuration
    /// would produce.
    ///
    /// Batches below two lanes and configurations observing more than
    /// [`Observe::Summary`] delegate to the scalar engine lane by lane
    /// (recording per-round snapshots or traces per lane in a batched
    /// loop would forfeit the shared scratch with no throughput win).
    #[must_use]
    pub fn run(&self, lanes: &[BatchLane]) -> Vec<Result<MobileRunOutcome>> {
        self.run_observed(lanes, &mut NoopObserver)
    }

    /// [`BatchEngine::run`] with an [`Observer`] attached. Round events
    /// from different lanes interleave round-major (the lockstep
    /// schedule), but each seed's event subsequence is bit-identical to
    /// the scalar engine's stream for that seed, and run-level events are
    /// emitted in lane order at collection. The observer never influences
    /// protocol state; outcomes are bit-identical to [`BatchEngine::run`].
    #[must_use]
    pub fn run_observed<O: Observer>(
        &self,
        lanes: &[BatchLane],
        observer: &mut O,
    ) -> Vec<Result<MobileRunOutcome>> {
        if self.config.observe != Observe::Summary || lanes.len() < 2 {
            return lanes
                .iter()
                .map(|lane| {
                    MobileEngine::new(self.lane_config(lane.seed))
                        .run_observed(&lane.inputs, observer)
                })
                .collect();
        }
        let specs: Vec<LaneSpec<'_>> = lanes
            .iter()
            .map(|lane| LaneSpec {
                cfg: &self.config,
                seed: lane.seed,
                inputs: &lane.inputs,
            })
            .collect();
        run_specs(&specs, observer)
    }

    /// Runs a **cross-point pack**: every lane carries its own
    /// configuration (its `seed` field is the lane seed), and all lanes
    /// advance in one lockstep loop as long as the pack shares a batch
    /// shape (see [`shape_compatible`]). Results are returned in lane
    /// order; each lane's result is exactly what a scalar
    /// [`MobileEngine`] run of its configuration would produce.
    ///
    /// Packs below two lanes, packs observing more than
    /// [`Observe::Summary`], and shape-incompatible packs delegate to the
    /// scalar engine lane by lane, so the call is total.
    #[must_use]
    pub fn run_packed(lanes: &[PackedLane]) -> Vec<Result<MobileRunOutcome>> {
        Self::run_packed_observed(lanes, &mut NoopObserver)
    }

    /// [`BatchEngine::run_packed`] with an [`Observer`] attached; the
    /// event-stream guarantees of [`BatchEngine::run_observed`] apply.
    #[must_use]
    pub fn run_packed_observed<O: Observer>(
        lanes: &[PackedLane],
        observer: &mut O,
    ) -> Vec<Result<MobileRunOutcome>> {
        let packable = lanes.len() >= 2
            && lanes
                .iter()
                .all(|lane| lane.config.observe == Observe::Summary)
            && lanes
                .windows(2)
                .all(|pair| shape_compatible(&pair[0].config, &pair[1].config));
        if !packable {
            return lanes
                .iter()
                .map(|lane| {
                    MobileEngine::new(lane.config.clone()).run_observed(&lane.inputs, observer)
                })
                .collect();
        }
        let specs: Vec<LaneSpec<'_>> = lanes
            .iter()
            .map(|lane| LaneSpec {
                cfg: &lane.config,
                seed: lane.config.seed,
                inputs: &lane.inputs,
            })
            .collect();
        run_specs(&specs, observer)
    }

    /// The lane-seeded scalar configuration: what the batch run must be
    /// bit-identical to.
    fn lane_config(&self, seed: u64) -> ProtocolConfig {
        let mut config = self.config.clone();
        config.seed = seed;
        config
    }
}

/// Routes a shape-homogeneous batch to the fast or the general lockstep
/// loop: the fast path requires *every* lane to be an unmasked complete
/// graph under a clean plan; one partial or dynamic lane sends the whole
/// pack down the general path (which handles complete lanes identically).
fn run_specs<O: Observer>(
    specs: &[LaneSpec<'_>],
    observer: &mut O,
) -> Vec<Result<MobileRunOutcome>> {
    let fast = specs.iter().all(|spec| {
        spec.cfg.schedule.is_none()
            && spec.cfg.link_faults.is_clean()
            && matches!(spec.cfg.topology, Topology::Complete)
    });
    if fast {
        run_fast(specs, observer)
    } else {
        run_general(specs, observer)
    }
}

/// Builds one lane's network exactly as the scalar engine would for the
/// lane-seeded configuration. Graph realization is deterministic in
/// `(n, seed)`, so seed-randomized topologies must realize *per lane*,
/// not once per group — this is the general path's fallback when
/// [`SharedRealization::try_build`] refuses a description.
fn lane_network(cfg: &ProtocolConfig, seed: u64) -> Result<SyncNetwork> {
    let n = cfg.n;
    let network = if cfg.schedule.is_none() && cfg.link_faults.is_clean() {
        match &cfg.topology {
            Topology::Complete => SyncNetwork::new(n),
            partial => SyncNetwork::with_topology(partial.realize(n, seed)?),
        }
    } else {
        let schedule = cfg
            .schedule
            .clone()
            .unwrap_or_else(|| TopologySchedule::Static(cfg.topology.clone()));
        SyncNetwork::with_dynamics(
            schedule.realize(n, seed)?,
            &cfg.link_faults,
            cfg.disconnection,
            seed,
        )?
    };
    // The batch paths only run at Observe::Summary.
    Ok(network.with_trace_recording(false))
}

/// Initializes the SoA state shared by both batch paths: lane-major flat
/// `votes` / `states` arrays and one control record per lane. Lanes with
/// the wrong input count are born `done` with their scalar error; their
/// state slices stay untouched placeholders. On the general path
/// (`groups` is `Some`) each lane receives either a [`LaneDelivery`] on
/// its group's shared realization or its own fallback network.
fn init_lanes(
    specs: &[LaneSpec<'_>],
    groups: Option<(&[NetGroup<'_>], &[usize])>,
) -> (Vec<Value>, Vec<FaultState>, Vec<LaneState>) {
    let n = specs[0].cfg.n;
    let mut votes = vec![Value::new(0.0); specs.len() * n];
    let states = vec![FaultState::Correct; specs.len() * n];
    let mut lane_states = Vec::with_capacity(specs.len());
    for (l, spec) in specs.iter().enumerate() {
        let cfg = spec.cfg;
        let mut ls = LaneState {
            adversary: MobileAdversary::new(
                cfg.model,
                n,
                cfg.f,
                cfg.mobility,
                cfg.corruption,
                spec.seed,
            ),
            network: None,
            delivery: None,
            group: 0,
            stats: NetworkStats::new(),
            validity_envelope: None,
            report: None,
            reached: false,
            rounds_executed: 0,
            error: None,
            done: false,
            prev_diameter: 0.0,
            prev_stats: NetworkStats::new(),
            corrupted_last: 0,
            corruptions: 0,
        };
        if spec.inputs.len() != n {
            ls.error = Some(Error::WrongInputCount {
                provided: spec.inputs.len(),
                expected: n,
            });
            ls.done = true;
        } else {
            votes[l * n..(l + 1) * n].copy_from_slice(spec.inputs);
            if let Some((groups, lane_group)) = groups {
                let g = lane_group[l];
                match &groups[g].realization {
                    Some(shared) => {
                        ls.delivery = Some(shared.lane(spec.seed));
                        ls.group = g;
                    }
                    None => match lane_network(cfg, spec.seed) {
                        Ok(network) => ls.network = Some(network),
                        Err(e) => {
                            ls.error = Some(e);
                            ls.done = true;
                        }
                    },
                }
            }
        }
        lane_states.push(ls);
    }
    (votes, states, lane_states)
}

/// The adversary phase of one lane's round, shared by both paths: places
/// the agents into the shared plan, applies the corruption left on cured
/// processes, tracks fault states, and performs the first-round
/// initialization (validity envelope, initial diameter, pre-sized report,
/// trivial-agreement early exit). Returns `false` when the lane
/// terminated before its send phase.
#[allow(clippy::too_many_arguments)]
fn begin_lane_round<O: Observer>(
    cfg: &ProtocolConfig,
    ls: &mut LaneState,
    round: Round,
    votes: &mut [Value],
    states: &mut [FaultState],
    plan: &mut RoundFaultPlan,
    received: &mut ValueMultiset,
    observer: &mut O,
) -> bool {
    observer.phase_start(Phase::AdversaryPlan);
    // The adversary sees everything; the "correct range" it reasons
    // about is the range of the currently non-faulty processes' values
    // (all values before the first placement).
    let visible_range = Interval::hull(
        votes
            .iter()
            .zip(&*states)
            .filter_map(|(v, s)| s.is_non_faulty().then_some(*v)),
    )
    .unwrap_or_else(|| Interval::point(votes[0]));
    let view = AdversaryView {
        round,
        votes,
        correct_range: visible_range,
    };
    ls.adversary.begin_round_into(&view, plan);

    // Agents that left a process corrupted the state behind them.
    ls.corrupted_last = 0;
    for p in plan.cured.iter() {
        if let Some(corrupted) = plan.corrupted_states[p.index()] {
            votes[p.index()] = corrupted;
            ls.corrupted_last += 1;
        }
    }
    for (i, state) in states.iter_mut().enumerate() {
        let p = ProcessId::new(i);
        *state = if plan.faulty.contains(p) {
            FaultState::Faulty
        } else if plan.cured.contains(p) {
            FaultState::Cured
        } else {
            FaultState::Correct
        };
    }
    observer.phase_end(Phase::AdversaryPlan);

    // First round: now that the faulty set is known, freeze the
    // validity envelope and the initial diameter, and size the report
    // to the round budget so later records never reallocate.
    if ls.validity_envelope.is_none() {
        received.refill(
            votes
                .iter()
                .zip(&*states)
                .filter_map(|(v, s)| s.is_non_faulty().then_some(*v)),
        );
        let envelope = received
            .range()
            .expect("at least one process is non-faulty");
        ls.validity_envelope = Some(envelope);
        let initial_diameter = received.diameter();
        ls.prev_diameter = initial_diameter;
        if cfg.epsilon.covers_diameter(initial_diameter) {
            ls.reached = true;
        }
        ls.report = Some(ConvergenceReport::with_capacity(
            initial_diameter,
            cfg.max_rounds,
        ));
        if ls.reached {
            ls.done = true;
            return false;
        }
    }
    true
}

/// The diameter bookkeeping closing one lane's round, shared by both
/// paths. Returns the round's diameter so the caller can emit the lane's
/// telemetry event without recomputing it.
fn finish_lane_round(
    cfg: &ProtocolConfig,
    ls: &mut LaneState,
    round_idx: usize,
    votes: &[Value],
    states: &[FaultState],
) -> f64 {
    ls.rounds_executed = round_idx + 1;
    let diameter = non_faulty_diameter(votes, states);
    let report = ls
        .report
        .as_mut()
        .expect("report initialised in first round");
    report.record_round(diameter);
    ls.reached = cfg.epsilon.covers_diameter(diameter);
    if ls.reached {
        ls.done = true;
    }
    diameter
}

/// Assembles each lane's outcome exactly as the scalar engine does,
/// emitting each lane's run-level telemetry in lane order.
fn collect<O: Observer>(
    specs: &[LaneSpec<'_>],
    votes: &[Value],
    states: &[FaultState],
    lane_states: Vec<LaneState>,
    observer: &mut O,
) -> Vec<Result<MobileRunOutcome>> {
    let n = specs[0].cfg.n;
    let telemetry = observer.enabled();
    lane_states
        .into_iter()
        .enumerate()
        .map(|(l, mut ls)| {
            if let Some(error) = ls.error.take() {
                return Err(error);
            }
            let votes = &votes[l * n..(l + 1) * n];
            let states = &states[l * n..(l + 1) * n];
            let validity_envelope = ls.validity_envelope.unwrap_or_else(|| {
                Interval::hull(votes.iter().copied()).expect("at least one process")
            });
            let report = ls.report.unwrap_or_else(|| {
                ConvergenceReport::new(
                    Interval::hull(votes.iter().copied())
                        .map(|i| i.diameter())
                        .unwrap_or(0.0),
                )
            });
            let (trace, network_stats) = match ls.network {
                Some(network) => network.into_parts(),
                None => (NetworkTrace::new(), ls.stats),
            };
            let outcome = MobileRunOutcome {
                reached_agreement: ls.reached,
                rounds_executed: ls.rounds_executed,
                final_votes: votes.to_vec(),
                final_states: states.to_vec(),
                report,
                validity_envelope,
                epsilon: specs[l].cfg.epsilon,
                configurations: Vec::new(),
                trace,
                network_stats,
            };
            if telemetry {
                emit_run_events(observer, specs[l].seed, &outcome, ls.corruptions);
            }
            Ok(outcome)
        })
        .collect()
}

/// The general batch path: every topology, schedule, and link-fault plan.
///
/// Lanes are grouped by network description; each group's seed-invariant
/// structure is realized **once** into a [`SharedRealization`] and every
/// lane of the group exchanges against it, carrying only its own draw
/// streams and delay pipes. Broadcasting senders are classified into
/// [`LaneSend`]s instead of materializing `n`-slot outboxes, and delivered
/// values land directly in packed [`DeliveryRows`] feeding the k-wide MSR
/// fold. Descriptions that realize per seed fall back to one scalar
/// network per lane inside the same lockstep loop. Either way, per-lane
/// results are bit-identical to the scalar engine by construction.
fn run_general<O: Observer>(
    specs: &[LaneSpec<'_>],
    observer: &mut O,
) -> Vec<Result<MobileRunOutcome>> {
    let n = specs[0].cfg.n;
    let k = specs.len();
    let telemetry = observer.enabled();

    // Group the pack by network description and realize each group's
    // shared structure once. A linear scan is fine: packs are ≤ the sweep
    // chunk width and most packs hold one or two descriptions.
    let mut groups: Vec<NetGroup<'_>> = Vec::new();
    let mut lane_group = vec![0usize; k];
    for (l, spec) in specs.iter().enumerate() {
        let g = groups
            .iter()
            .position(|group| same_network_description(group.cfg, spec.cfg));
        let g = match g {
            Some(g) => g,
            None => {
                groups.push(NetGroup {
                    cfg: spec.cfg,
                    realization: SharedRealization::try_build(
                        n,
                        &spec.cfg.topology,
                        spec.cfg.schedule.as_ref(),
                        &spec.cfg.link_faults,
                        spec.cfg.disconnection,
                    ),
                });
                groups.len() - 1
            }
        };
        lane_group[l] = g;
    }

    let (mut votes, mut states, mut lane_states) = init_lanes(specs, Some((&groups, &lane_group)));
    let RoundScratch {
        mut plan,
        mut outboxes,
        mut deliveries,
        mut received,
    } = RoundScratch::new(n);
    let mut sends: Vec<LaneSend> = vec![LaneSend::Silent; n];
    let mut active: Vec<bool> = vec![false; n];
    let mut rows = DeliveryRows::new(n);
    let mut lane_votes: Vec<Option<Value>> = vec![None; n];
    let max_rounds = specs.iter().map(|s| s.cfg.max_rounds).max().unwrap_or(0);

    // The lockstep round loop: round r of every live lane runs before
    // round r + 1 of any. Statically allocation-free like the scalar
    // loop; the first-round initialization inside `begin_lane_round`
    // carries the same waivers.
    // mbaa: alloc-free
    for round_idx in 0..max_rounds {
        let mut all_done = true;
        for l in 0..k {
            let spec = &specs[l];
            let cfg = spec.cfg;
            let ls = &mut lane_states[l];
            if ls.done || round_idx >= cfg.max_rounds {
                continue;
            }
            all_done = false;
            let round = Round::new(round_idx as u64);
            let votes_l = &mut votes[l * n..(l + 1) * n];
            let states_l = &mut states[l * n..(l + 1) * n];
            if !begin_lane_round(
                cfg,
                ls,
                round,
                votes_l,
                states_l,
                &mut plan,
                &mut received,
                observer,
            ) {
                continue;
            }
            let compute_even_if_faulty = cfg.model.agents_move_with_messages();

            if ls.delivery.is_some() {
                // Shared-realization path. Send phase: classify senders —
                // a broadcaster contributes one value, not n slots; only
                // the ≤ 2f genuinely per-receiver senders (adversary
                // outboxes, poisoned queues) fill their scratch outbox.
                observer.phase_start(Phase::Exchange);
                for (i, &vote) in votes_l.iter().enumerate() {
                    let p = ProcessId::new(i);
                    sends[i] = if plan.faulty.contains(p) {
                        fill_outbox(cfg.model, &mut outboxes[i], p, &plan, votes_l);
                        LaneSend::PerReceiver(i)
                    } else if plan.cured.contains(p) {
                        match cfg.model {
                            MobileModel::Garay => LaneSend::Silent,
                            MobileModel::Bonnet => LaneSend::Broadcast(vote),
                            MobileModel::Sasaki => {
                                fill_outbox(cfg.model, &mut outboxes[i], p, &plan, votes_l);
                                LaneSend::PerReceiver(i)
                            }
                            MobileModel::Buhrman => {
                                unreachable!("Buhrman's model has no cured senders")
                            }
                        }
                    } else {
                        LaneSend::Broadcast(vote)
                    };
                }
                for (i, state) in states_l.iter().enumerate() {
                    active[i] = state.is_non_faulty() || compute_even_if_faulty;
                }

                // Receive phase, straight into the packed row arena. A
                // network error (e.g. a rejected disconnected round) fails
                // this lane exactly as it fails a scalar run — other lanes
                // (and the shared structure) are unaffected.
                let shared = groups[ls.group]
                    .realization
                    .as_mut()
                    .expect("shared lanes belong to a realized group");
                let delivery = ls.delivery.as_mut().expect("shared lanes carry a delivery");
                if let Err(e) = shared.exchange_rows(
                    delivery,
                    round,
                    &sends,
                    &outboxes,
                    &active,
                    &mut rows,
                    &mut ls.stats,
                ) {
                    observer.phase_end(Phase::Exchange);
                    ls.error = Some(e);
                    ls.done = true;
                    continue;
                }
                observer.phase_end(Phase::Exchange);

                // Compute phase: sort each receiver's row in place (the
                // same unstable sort the scalar multiset refill performs)
                // and fold — one k-wide MSR call when every row has the
                // same width, per-row applies otherwise.
                observer.phase_start(Phase::MsrApply);
                for row in 0..rows.rows() {
                    rows.row_mut(row).sort_unstable();
                }
                if let Some(lane_len) = rows.uniform_len() {
                    cfg.function.apply_sorted_lanes(
                        rows.flat(),
                        lane_len,
                        &mut lane_votes[..rows.rows()],
                    );
                } else {
                    for (row, vote) in lane_votes[..rows.rows()].iter_mut().enumerate() {
                        *vote = cfg.function.apply_sorted(rows.row(row));
                    }
                }
                for row in 0..rows.rows() {
                    if let Some(next) = lane_votes[row] {
                        votes_l[rows.receiver(row)] = next;
                    }
                }
                observer.phase_end(Phase::MsrApply);

                observer.phase_start(Phase::Record);
                let diameter = finish_lane_round(cfg, ls, round_idx, votes_l, states_l);
                if telemetry {
                    let stats = ls.stats;
                    let width = match rows.min_len() {
                        Some(len) => cfg.function.reduced_width(len),
                        None => 0,
                    };
                    observer.on_round(&RoundEvent {
                        seed: spec.seed,
                        round: round_idx as u64,
                        diameter,
                        contraction: if ls.prev_diameter > 0.0 {
                            diameter / ls.prev_diameter
                        } else {
                            1.0
                        },
                        faulty: plan.faulty.len() as u32,
                        cured: plan.cured.len() as u32,
                        corrupted: ls.corrupted_last,
                        delivered: stats.messages_delivered - ls.prev_stats.messages_delivered,
                        omissions: stats.omissions - ls.prev_stats.omissions,
                        link_omissions: stats.link_omissions - ls.prev_stats.link_omissions,
                        msr_width: width as u32,
                    });
                    ls.prev_stats = stats;
                    ls.prev_diameter = diameter;
                    ls.corruptions += u64::from(ls.corrupted_last);
                }
                observer.phase_end(Phase::Record);
            } else {
                // Per-lane fallback: the lane owns a scalar network and
                // runs the exact statement sequence of the scalar loop.
                observer.phase_start(Phase::Exchange);
                for (i, outbox) in outboxes.iter_mut().enumerate() {
                    fill_outbox(cfg.model, outbox, ProcessId::new(i), &plan, votes_l);
                }
                let network = ls.network.as_mut().expect("fallback lanes carry a network");
                if let Err(e) = network.exchange_into(round, &outboxes, &mut deliveries) {
                    observer.phase_end(Phase::Exchange);
                    ls.error = Some(e);
                    ls.done = true;
                    continue;
                }
                observer.phase_end(Phase::Exchange);

                observer.phase_start(Phase::MsrApply);
                let mut min_multiset = usize::MAX;
                for i in 0..n {
                    if states_l[i].is_non_faulty() || compute_even_if_faulty {
                        received.refill(deliveries.delivered_to(ProcessId::new(i)));
                        if telemetry {
                            min_multiset = min_multiset.min(received.len());
                        }
                        if let Some(next) = cfg.function.apply_sorted(received.as_slice()) {
                            votes_l[i] = next;
                        }
                    }
                }
                observer.phase_end(Phase::MsrApply);

                observer.phase_start(Phase::Record);
                let diameter = finish_lane_round(cfg, ls, round_idx, votes_l, states_l);
                if telemetry {
                    let stats = ls
                        .network
                        .as_ref()
                        .expect("fallback lanes carry a network")
                        .stats();
                    let width = if min_multiset == usize::MAX {
                        0
                    } else {
                        cfg.function.reduced_width(min_multiset)
                    };
                    observer.on_round(&RoundEvent {
                        seed: spec.seed,
                        round: round_idx as u64,
                        diameter,
                        contraction: if ls.prev_diameter > 0.0 {
                            diameter / ls.prev_diameter
                        } else {
                            1.0
                        },
                        faulty: plan.faulty.len() as u32,
                        cured: plan.cured.len() as u32,
                        corrupted: ls.corrupted_last,
                        delivered: stats.messages_delivered - ls.prev_stats.messages_delivered,
                        omissions: stats.omissions - ls.prev_stats.omissions,
                        link_omissions: stats.link_omissions - ls.prev_stats.link_omissions,
                        msr_width: width as u32,
                    });
                    ls.prev_stats = stats;
                    ls.prev_diameter = diameter;
                    ls.corruptions += u64::from(ls.corrupted_last);
                }
                observer.phase_end(Phase::Record);
            }
        }
        if all_done {
            break;
        }
    }

    collect(specs, &votes, &states, lane_states, observer)
}

/// The complete-topology fast path: no schedule, clean links. Senders
/// classify into broadcasters (one shared sorted buffer), silent
/// processes, and ≤ 2f "special" senders with per-receiver outboxes;
/// each receiver's multiset is the common buffer merged with its
/// special slots, folded by the k-wide MSR apply. No outboxes are
/// filled and no delivery matrix exists — traffic statistics are
/// accounted in closed form, matching the scalar network's counters
/// exactly.
fn run_fast<O: Observer>(
    specs: &[LaneSpec<'_>],
    observer: &mut O,
) -> Vec<Result<MobileRunOutcome>> {
    let n = specs[0].cfg.n;
    let k = specs.len();
    let telemetry = observer.enabled();
    let (mut votes, mut states, mut lane_states) = init_lanes(specs, None);
    let mut plan = RoundFaultPlan::empty(n);
    let mut received = ValueMultiset::with_capacity(n);

    // Fast-path scratch, shared across lanes and rounds. `merged` is
    // written with index arithmetic into pre-sized rows (never grown),
    // so the whole loop below stays free of allocating idioms.
    let mut common: Vec<Value> = vec![Value::new(0.0); n];
    let mut extra: Vec<Value> = vec![Value::new(0.0); n];
    let mut specials: Vec<usize> = vec![0; n];
    let mut merged: Vec<Value> = vec![Value::new(0.0); n * n];
    let mut active: Vec<usize> = vec![0; n];
    let mut row_offsets: Vec<usize> = vec![0; n];
    let mut row_lens: Vec<usize> = vec![0; n];
    let mut lane_votes: Vec<Option<Value>> = vec![None; n];
    let max_rounds = specs.iter().map(|s| s.cfg.max_rounds).max().unwrap_or(0);

    // The lockstep round loop (see `run_general` for the schedule);
    // statically allocation-free, enforced by `mbaa-analyze`.
    // mbaa: alloc-free
    for round_idx in 0..max_rounds {
        let mut all_done = true;
        for l in 0..k {
            let spec = &specs[l];
            let cfg = spec.cfg;
            let ls = &mut lane_states[l];
            if ls.done || round_idx >= cfg.max_rounds {
                continue;
            }
            all_done = false;
            let round = Round::new(round_idx as u64);
            let votes_l = &mut votes[l * n..(l + 1) * n];
            let states_l = &mut states[l * n..(l + 1) * n];
            if !begin_lane_round(
                cfg,
                ls,
                round,
                votes_l,
                states_l,
                &mut plan,
                &mut received,
                observer,
            ) {
                continue;
            }
            let compute_even_if_faulty = cfg.model.agents_move_with_messages();

            // Send-phase classification. A non-faulty, non-cured
            // process broadcasts its vote; cured behaviour is the
            // model's (Garay silent, Bonnet broadcast, Sasaki poisoned
            // queue); faulty senders use the adversary's outbox.
            observer.phase_start(Phase::Exchange);
            let mut common_len = 0;
            let mut specials_len = 0;
            for (i, &vote) in votes_l.iter().enumerate() {
                let p = ProcessId::new(i);
                if plan.faulty.contains(p) {
                    specials[specials_len] = i;
                    specials_len += 1;
                } else if plan.cured.contains(p) {
                    match cfg.model {
                        MobileModel::Garay => {}
                        MobileModel::Bonnet => {
                            common[common_len] = vote;
                            common_len += 1;
                        }
                        MobileModel::Sasaki => {
                            specials[specials_len] = i;
                            specials_len += 1;
                        }
                        MobileModel::Buhrman => {
                            unreachable!("Buhrman's model has no cured senders")
                        }
                    }
                } else {
                    common[common_len] = vote;
                    common_len += 1;
                }
            }
            common[..common_len].sort_unstable();

            // Closed-form traffic accounting: a broadcast delivers to
            // all n receivers, a special outbox to its Some slots, and
            // every other reachable slot is a sender omission — the
            // unmasked complete graph has no structural drops.
            let mut delivered = (common_len * n) as u64;
            for &s in &specials[..specials_len] {
                delivered += special_outbox(&plan, s)
                    .iter()
                    .filter(|(_, slot)| slot.is_some())
                    .count() as u64;
            }
            ls.stats.rounds += 1;
            ls.stats.messages_delivered += delivered;
            ls.stats.omissions += (n * n) as u64 - delivered;
            observer.phase_end(Phase::Exchange);

            // Compute phase: each active receiver's multiset is the
            // common buffer merged with its special slots, ascending —
            // the same sorted array the scalar multiset refill
            // produces. Rows are packed back to back in `merged`; when
            // every row has the same width the k-wide MSR fold handles
            // the whole lane in one call.
            observer.phase_start(Phase::MsrApply);
            let mut rows = 0;
            let mut total = 0;
            let mut uniform = true;
            for (r, state) in states_l.iter().enumerate() {
                if !(state.is_non_faulty() || compute_even_if_faulty) {
                    continue;
                }
                let receiver = ProcessId::new(r);
                let mut extra_len = 0;
                for &s in &specials[..specials_len] {
                    if let Some(v) = special_outbox(&plan, s).get(receiver) {
                        extra[extra_len] = v;
                        extra_len += 1;
                    }
                }
                extra[..extra_len].sort_unstable();
                merge_sorted(
                    &common[..common_len],
                    &extra[..extra_len],
                    &mut merged[total..total + common_len + extra_len],
                );
                let row_len = common_len + extra_len;
                if rows > 0 && row_len != row_lens[0] {
                    uniform = false;
                }
                active[rows] = r;
                row_offsets[rows] = total;
                row_lens[rows] = row_len;
                rows += 1;
                total += row_len;
            }
            if uniform && rows > 0 {
                cfg.function.apply_sorted_lanes(
                    &merged[..total],
                    row_lens[0],
                    &mut lane_votes[..rows],
                );
            } else {
                for row in 0..rows {
                    lane_votes[row] = cfg
                        .function
                        .apply_sorted(&merged[row_offsets[row]..row_offsets[row] + row_lens[row]]);
                }
            }
            for row in 0..rows {
                if let Some(next) = lane_votes[row] {
                    votes_l[active[row]] = next;
                }
            }
            observer.phase_end(Phase::MsrApply);

            observer.phase_start(Phase::Record);
            let diameter = finish_lane_round(cfg, ls, round_idx, votes_l, states_l);
            if telemetry {
                // The closed-form accounting above already yields the
                // per-round traffic: the unmasked complete graph has no
                // link faults, so every non-delivered slot is a sender
                // omission.
                let min_row = row_lens[..rows].iter().copied().min();
                let width = match min_row {
                    Some(len) => cfg.function.reduced_width(len),
                    None => 0,
                };
                observer.on_round(&RoundEvent {
                    seed: spec.seed,
                    round: round_idx as u64,
                    diameter,
                    contraction: if ls.prev_diameter > 0.0 {
                        diameter / ls.prev_diameter
                    } else {
                        1.0
                    },
                    faulty: plan.faulty.len() as u32,
                    cured: plan.cured.len() as u32,
                    corrupted: ls.corrupted_last,
                    delivered,
                    omissions: (n * n) as u64 - delivered,
                    link_omissions: 0,
                    msr_width: width as u32,
                });
                ls.prev_diameter = diameter;
                ls.corruptions += u64::from(ls.corrupted_last);
            }
            observer.phase_end(Phase::Record);
        }
        if all_done {
            break;
        }
    }

    collect(specs, &votes, &states, lane_states, observer)
}

/// The per-receiver outbox of a "special" sender on the fast path: the
/// adversary's outbox for a faulty process, the poisoned queue for a
/// Sasaki-cured one.
fn special_outbox(plan: &RoundFaultPlan, i: usize) -> &Outbox {
    if plan.faulty.contains(ProcessId::new(i)) {
        plan.faulty_outboxes[i]
            .as_ref()
            .expect("adversary provides an outbox for every faulty process")
    } else {
        plan.poisoned_outboxes[i]
            .as_ref()
            .expect("Sasaki adversary provides a poisoned queue for every cured process")
    }
}

/// Merges two ascending slices into `out` (exactly `a.len() + b.len()`
/// long), preserving order — the classic two-pointer merge, allocation
/// free.
// mbaa: alloc-free
fn merge_sorted(a: &[Value], b: &[Value], out: &mut [Value]) {
    debug_assert_eq!(out.len(), a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_a = j >= b.len() || (i < a.len() && a[i] <= b[j]);
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: usize, salt: u64) -> Vec<Value> {
        (0..n)
            .map(|i| Value::new(((i as u64 * 31 + salt * 17) % 101) as f64 / 101.0))
            .collect()
    }

    fn lanes(n: usize, seeds: &[u64]) -> Vec<BatchLane> {
        seeds
            .iter()
            .map(|&seed| BatchLane {
                seed,
                inputs: inputs(n, seed),
            })
            .collect()
    }

    fn base_config(model: MobileModel, n: usize, f: usize) -> ProtocolConfig {
        ProtocolConfig::builder(model, n, f)
            .epsilon(1e-4)
            .max_rounds(400)
            .seed(999) // must be ignored: every lane carries its own seed
            .build()
            .unwrap()
    }

    fn assert_matches_scalar(config: &ProtocolConfig, batch_lanes: &[BatchLane]) {
        let engine = BatchEngine::new(config.clone());
        let results = engine.run(batch_lanes);
        assert_eq!(results.len(), batch_lanes.len());
        for (lane, result) in batch_lanes.iter().zip(results) {
            let scalar = MobileEngine::new(engine.lane_config(lane.seed)).run(&lane.inputs);
            match (result, scalar) {
                (Ok(batch), Ok(scalar)) => assert_eq!(batch, scalar, "seed {}", lane.seed),
                (Err(b), Err(s)) => assert_eq!(b.to_string(), s.to_string(), "seed {}", lane.seed),
                (b, s) => panic!("seed {}: batch {b:?} vs scalar {s:?}", lane.seed),
            }
        }
    }

    #[test]
    fn fast_path_matches_scalar_for_all_models() {
        for model in MobileModel::ALL {
            let f = 2;
            let n = model.required_processes(f);
            let config = base_config(model, n, f);
            assert_matches_scalar(&config, &lanes(n, &[1, 2, 3, 4, 5]));
        }
    }

    #[test]
    fn partial_topology_batches_match_scalar() {
        let config = ProtocolConfig::builder(MobileModel::Garay, 9, 1)
            .epsilon(1e-3)
            .max_rounds(300)
            .topology(Topology::Ring { k: 2 })
            .build()
            .unwrap();
        assert_matches_scalar(&config, &lanes(9, &[7, 8, 9]));
    }

    #[test]
    fn wrong_input_count_fails_only_that_lane() {
        let n = 9;
        let config = base_config(MobileModel::Garay, n, 2);
        let mut batch_lanes = lanes(n, &[1, 2, 3]);
        batch_lanes[1].inputs.truncate(4);
        let results = BatchEngine::new(config).run(&batch_lanes);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(Error::WrongInputCount {
                provided: 4,
                expected: 9
            })
        ));
        assert!(results[2].is_ok());
    }

    #[test]
    fn single_lane_degenerates_to_scalar() {
        let n = 9;
        let config = base_config(MobileModel::Garay, n, 2);
        assert_matches_scalar(&config, &lanes(n, &[42]));
    }

    #[test]
    fn trivially_agreeing_lanes_terminate_without_rounds() {
        let n = 9;
        let config = base_config(MobileModel::Garay, n, 2);
        let batch_lanes: Vec<BatchLane> = [1u64, 2]
            .iter()
            .map(|&seed| BatchLane {
                seed,
                inputs: vec![Value::new(0.5); n],
            })
            .collect();
        let results = BatchEngine::new(config.clone()).run(&batch_lanes);
        for result in &results {
            let outcome = result.as_ref().unwrap();
            assert!(outcome.reached_agreement);
            assert_eq!(outcome.rounds_executed, 0);
            assert_eq!(outcome.network_stats.rounds, 0);
        }
        assert_matches_scalar(&config, &batch_lanes);
    }

    #[test]
    fn tight_epsilon_exhausts_the_budget_identically() {
        let n = 9;
        let config = ProtocolConfig::builder(MobileModel::Garay, n, 2)
            .epsilon(1e-300)
            .max_rounds(20)
            .build()
            .unwrap();
        assert_matches_scalar(&config, &lanes(n, &[1, 2]));
    }

    #[test]
    fn packed_cross_point_lanes_match_their_own_scalar_runs() {
        // Three shape-compatible points with different ε, budgets, and
        // networks — one pack, per-lane outcomes bit-identical to scalar.
        let n = 9;
        let ring = ProtocolConfig::builder(MobileModel::Garay, n, 1)
            .epsilon(1e-3)
            .max_rounds(120)
            .topology(Topology::Ring { k: 2 })
            .build()
            .unwrap();
        let complete = ProtocolConfig::builder(MobileModel::Garay, n, 1)
            .epsilon(1e-5)
            .max_rounds(300)
            .build()
            .unwrap();
        let churn = ProtocolConfig::builder(MobileModel::Garay, n, 1)
            .epsilon(1e-4)
            .max_rounds(250)
            .topology_schedule(TopologySchedule::SeededChurn {
                base: Topology::Complete,
                flip_rate: 0.1,
            })
            .build()
            .unwrap();
        let mut pack = Vec::new();
        for (point, cfg) in [ring, complete, churn].iter().enumerate() {
            for seed in 1..=3u64 {
                let mut config = cfg.clone();
                config.seed = seed + 10 * point as u64;
                pack.push(PackedLane {
                    inputs: inputs(n, config.seed),
                    config,
                });
            }
        }
        let results = BatchEngine::run_packed(&pack);
        assert_eq!(results.len(), pack.len());
        for (lane, result) in pack.iter().zip(results) {
            let scalar = MobileEngine::new(lane.config.clone())
                .run(&lane.inputs)
                .unwrap();
            assert_eq!(result.unwrap(), scalar, "seed {}", lane.config.seed);
        }
    }

    #[test]
    fn shape_incompatible_packs_fall_back_to_scalar() {
        let a = base_config(MobileModel::Garay, 9, 1);
        let b = base_config(MobileModel::Garay, 13, 2);
        let pack = vec![
            PackedLane {
                config: a.clone(),
                inputs: inputs(9, 1),
            },
            PackedLane {
                config: b.clone(),
                inputs: inputs(13, 2),
            },
        ];
        assert!(!shape_compatible(&a, &b));
        let results = BatchEngine::run_packed(&pack);
        for (lane, result) in pack.iter().zip(results) {
            let scalar = MobileEngine::new(lane.config.clone())
                .run(&lane.inputs)
                .unwrap();
            assert_eq!(result.unwrap(), scalar);
        }
    }
}
