//! Protocol configuration and its builder.

use serde::{Deserialize, Serialize};

use mbaa_adversary::{CorruptionStrategy, MobilityStrategy};
use mbaa_msr::MsrFunction;
use mbaa_net::{
    Adjacency, DirectedAdjacency, DisconnectionPolicy, LinkFaultPlan, Topology, TopologySchedule,
};
use mbaa_types::{Epsilon, Error, MobileModel, ProcessId, Result};

/// The single source of truth for every default the workspace fills in when
/// a knob is left unspecified. The `Scenario` entry point in the `mbaa`
/// facade crate and [`ProtocolConfigBuilder`] both draw from here, so a
/// default is never decided in two places.
pub mod defaults {
    use mbaa_adversary::{CorruptionStrategy, MobilityStrategy};
    use mbaa_msr::MsrFunction;
    use mbaa_types::MobileModel;

    /// ε for direct, low-level protocol runs (tight, convergence-focused).
    pub const PROTOCOL_EPSILON: f64 = 1e-6;

    /// Round budget for direct, low-level protocol runs.
    pub const PROTOCOL_MAX_ROUNDS: usize = 1_000;

    /// ε for experiment-style scenario runs (the paper's table settings).
    pub const EXPERIMENT_EPSILON: f64 = 1e-3;

    /// Round budget for experiment-style scenario runs.
    pub const EXPERIMENT_MAX_ROUNDS: usize = 300;

    /// The worst-case agent placement: occupy the extreme-valued processes.
    #[must_use]
    pub fn worst_case_mobility() -> MobilityStrategy {
        MobilityStrategy::TargetExtremes
    }

    /// The worst-case value corruption: the classic split attack.
    #[must_use]
    pub fn worst_case_corruption() -> CorruptionStrategy {
        CorruptionStrategy::split_attack()
    }

    /// The MSR instance the paper analyses for `model` at `f` agents: the
    /// instance tuned to the model's mapped Mixed-Mode fault counts
    /// (Lemmas 1–4).
    #[must_use]
    pub fn model_default_function(model: MobileModel, f: usize) -> MsrFunction {
        MsrFunction::for_fault_counts(model.mixed_fault_counts(f))
    }
}

/// How much of an execution the engine records — the observability level
/// threaded from `Scenario` through [`ProtocolConfig`] down to the network
/// layer.
///
/// Recording is pure *observation*: the protocol computation is identical
/// at every level, so the fields an outcome does record are bit-identical
/// across levels. What changes is the per-round cost — under
/// [`Observe::Summary`] a steady-state round performs **zero heap
/// allocations**, which is what makes 10k-seed sweeps memory- and
/// allocation-flat.
///
/// * [`Observe::Full`] — per-round [`RoundSnapshot`](crate::RoundSnapshot)s
///   *and* the full n×n-per-round network trace (the Table 1 raw
///   material). The default: single runs stay fully inspectable.
/// * [`Observe::Snapshots`] — per-round snapshots, no network trace.
/// * [`Observe::Summary`] — neither; only the convergence report, final
///   votes/states, and network statistics survive. The summary-level
///   batch/stream paths run at this level.
///
/// # Example
///
/// ```
/// use mbaa_core::{MobileEngine, Observe, ProtocolConfig};
/// use mbaa_types::{MobileModel, Value};
///
/// let config = ProtocolConfig::builder(MobileModel::Garay, 9, 2)
///     .observe(Observe::Summary)
///     .build()?;
/// let inputs: Vec<Value> = (0..9).map(|i| Value::new(i as f64 / 9.0)).collect();
/// let outcome = MobileEngine::new(config).run(&inputs)?;
/// // The computation is unchanged; only the recordings are skipped.
/// assert!(outcome.reached_agreement);
/// assert!(outcome.configurations.is_empty() && outcome.trace.is_empty());
/// # Ok::<(), mbaa_types::Error>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Observe {
    /// Record per-round snapshots and the full network trace.
    #[default]
    Full,
    /// Record per-round snapshots only.
    Snapshots,
    /// Record nothing beyond the run summary's inputs.
    Summary,
}

impl Observe {
    /// Whether per-round [`RoundSnapshot`](crate::RoundSnapshot)s are
    /// recorded at this level.
    #[must_use]
    pub fn records_snapshots(self) -> bool {
        matches!(self, Observe::Full | Observe::Snapshots)
    }

    /// Whether the network trace is recorded at this level.
    #[must_use]
    pub fn records_trace(self) -> bool {
        matches!(self, Observe::Full)
    }
}

/// The complete, validated configuration of one protocol execution.
///
/// Use [`ProtocolConfig::builder`] to assemble one; the builder checks the
/// model's resilience bound `n > n_Mi` unless the caller explicitly opts out
/// (which the lower-bound experiments do).
///
/// # Example
///
/// ```
/// use mbaa_core::ProtocolConfig;
/// use mbaa_types::MobileModel;
///
/// let config = ProtocolConfig::builder(MobileModel::Bonnet, 11, 2)
///     .epsilon(1e-3)
///     .max_rounds(200)
///     .build()?;
/// assert_eq!(config.n, 11);
/// # Ok::<(), mbaa_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// The mobile Byzantine model under which the protocol runs.
    pub model: MobileModel,
    /// The number of processes.
    pub n: usize,
    /// The number of mobile Byzantine agents.
    pub f: usize,
    /// The agreement tolerance.
    pub epsilon: Epsilon,
    /// The maximum number of rounds the engine will execute.
    pub max_rounds: usize,
    /// The agent placement strategy.
    pub mobility: MobilityStrategy,
    /// The value corruption strategy.
    pub corruption: CorruptionStrategy,
    /// The communication graph mediating every exchange
    /// ([`Topology::Complete`] reproduces the paper's network exactly).
    pub topology: Topology,
    /// The per-round topology schedule, or `None` for the static
    /// [`topology`](ProtocolConfig::topology) axis. When set, the (then
    /// necessarily default-complete) static topology is ignored and the
    /// schedule's realized graph of each round masks delivery.
    pub schedule: Option<TopologySchedule>,
    /// Per-link omission/delay faults layered on the structural mask
    /// (clean by default — the paper's reliable links).
    pub link_faults: LinkFaultPlan,
    /// What a dynamic schedule does with a transiently disconnected round:
    /// record it in the network statistics (default) or reject the run
    /// with a typed error.
    pub disconnection: DisconnectionPolicy,
    /// The MSR instance run by non-faulty processes.
    pub function: MsrFunction,
    /// Seed of all adversarial randomness.
    pub seed: u64,
    /// Whether the configuration was allowed to violate the model's bound.
    pub bound_violation_allowed: bool,
    /// How much of the execution the engine records (snapshots / trace).
    /// Defaults on deserialization so pre-`Observe` documents still load.
    #[serde(default)]
    pub observe: Observe,
}

impl ProtocolConfig {
    /// Starts building a configuration for `n` processes and `f` agents
    /// under `model`.
    #[must_use]
    pub fn builder(model: MobileModel, n: usize, f: usize) -> ProtocolConfigBuilder {
        ProtocolConfigBuilder::new(model, n, f)
    }

    /// Returns `true` when the configuration satisfies the model's replica
    /// requirement `n > n_Mi` (Table 2).
    #[must_use]
    pub fn satisfies_bound(&self) -> bool {
        self.n >= self.model.required_processes(self.f)
    }

    /// The reduction parameter τ the configured MSR function uses.
    #[must_use]
    pub fn tau(&self) -> usize {
        self.function.reduction().tau()
    }
}

/// Builder for [`ProtocolConfig`].
#[derive(Debug, Clone)]
pub struct ProtocolConfigBuilder {
    model: MobileModel,
    n: usize,
    f: usize,
    epsilon: Epsilon,
    max_rounds: usize,
    mobility: MobilityStrategy,
    corruption: CorruptionStrategy,
    topology: Topology,
    schedule: Option<TopologySchedule>,
    link_faults: LinkFaultPlan,
    disconnection: DisconnectionPolicy,
    function: Option<MsrFunction>,
    seed: u64,
    allow_bound_violation: bool,
    observe: Observe,
}

impl ProtocolConfigBuilder {
    fn new(model: MobileModel, n: usize, f: usize) -> Self {
        ProtocolConfigBuilder {
            model,
            n,
            f,
            epsilon: Epsilon::new(defaults::PROTOCOL_EPSILON),
            max_rounds: defaults::PROTOCOL_MAX_ROUNDS,
            mobility: MobilityStrategy::default(),
            corruption: CorruptionStrategy::default(),
            topology: Topology::Complete,
            schedule: None,
            link_faults: LinkFaultPlan::default(),
            disconnection: DisconnectionPolicy::default(),
            function: None,
            seed: 0,
            allow_bound_violation: false,
            observe: Observe::default(),
        }
    }

    /// Sets the agreement tolerance ε.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not finite and strictly positive.
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = Epsilon::new(epsilon);
        self
    }

    /// Sets the maximum number of rounds (default 1000).
    #[must_use]
    pub fn max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the agent placement strategy (default round-robin).
    #[must_use]
    pub fn mobility(mut self, mobility: MobilityStrategy) -> Self {
        self.mobility = mobility;
        self
    }

    /// Sets the value corruption strategy (default split attack).
    #[must_use]
    pub fn corruption(mut self, corruption: CorruptionStrategy) -> Self {
        self.corruption = corruption;
        self
    }

    /// Sets the communication graph (default [`Topology::Complete`], the
    /// paper's fully connected network).
    ///
    /// [`build`](ProtocolConfigBuilder::build) realizes and validates the
    /// graph: disconnected topologies are always rejected, and on a partial
    /// graph every process must hear at least the model's replica
    /// requirement `n_Mi` per round (its closed neighbourhood) unless bound
    /// violations are explicitly allowed.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets a per-round topology schedule — the mobile-network axis. The
    /// static topology must stay at its default ([`Topology::Complete`]);
    /// schedule a static graph with
    /// [`TopologySchedule::Static`] instead of setting both knobs.
    ///
    /// [`build`](ProtocolConfigBuilder::build) realizes and validates the
    /// schedule: the static graph or churn base must be connected (the
    /// typed [`Error::DisconnectedTopology`], never waived) and satisfy
    /// the model's degree-dependent resilience requirement unless bound
    /// violations are allowed. Periodic phases are held to the same checks
    /// under the [`DisconnectionPolicy::Reject`] policy; under the default
    /// [`DisconnectionPolicy::Record`] policy a phase may be transiently
    /// disconnected or sparse — the Li–Hurfin–Wang evolving-graph regime,
    /// where only the union over a window carries the bound.
    #[must_use]
    pub fn topology_schedule(mut self, schedule: TopologySchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Sets the per-link omission/delay fault plan (default clean — the
    /// paper's reliable links). [`build`](ProtocolConfigBuilder::build)
    /// validates every rule against the universe with typed errors.
    #[must_use]
    pub fn link_faults(mut self, link_faults: LinkFaultPlan) -> Self {
        self.link_faults = link_faults;
        self
    }

    /// Sets the per-round disconnection policy of a dynamic schedule
    /// (default [`DisconnectionPolicy::Record`]).
    #[must_use]
    pub fn disconnection(mut self, policy: DisconnectionPolicy) -> Self {
        self.disconnection = policy;
        self
    }

    /// Sets the MSR instance explicitly. By default the builder picks
    /// [`MsrFunction::for_fault_counts`] with the model's mapped fault
    /// counts (Lemmas 1–4), which is the instance the paper analyses.
    #[must_use]
    pub fn function(mut self, function: MsrFunction) -> Self {
        self.function = Some(function);
        self
    }

    /// Sets the adversary seed (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the observability level (default [`Observe::Full`]). Purely an
    /// observation knob: the computation — and every recorded field — is
    /// bit-identical across levels, but [`Observe::Summary`] keeps
    /// steady-state rounds allocation-free.
    #[must_use]
    pub fn observe(mut self, observe: Observe) -> Self {
        self.observe = observe;
        self
    }

    /// Allows configurations with `n <= n_Mi`, which the model cannot
    /// tolerate — used by the lower-bound and threshold experiments.
    #[must_use]
    pub fn allow_bound_violation(mut self) -> Self {
        self.allow_bound_violation = true;
        self
    }

    /// Validates the parameters and produces the configuration.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameter`] when `n == 0`, `max_rounds == 0`, `f`
    ///   exceeds `n`, or the topology cannot be realized over `n` processes
    ///   (mismatched custom matrix, infeasible random-regular degree).
    /// * [`Error::InsufficientProcesses`] when `n <= n_Mi` and bound
    ///   violations were not explicitly allowed.
    /// * [`Error::DisconnectedTopology`] when the realized graph is not
    ///   connected (never waived: agreement is meaningless across
    ///   components).
    /// * [`Error::InsufficientConnectivity`] when, on a partial graph, some
    ///   process hears fewer than `n_Mi` processes per round and bound
    ///   violations were not explicitly allowed.
    /// * [`Error::UnknownProcess`] when a link-fault rule names an endpoint
    ///   outside the universe.
    pub fn build(self) -> Result<ProtocolConfig> {
        if self.n == 0 {
            return Err(Error::InvalidParameter("n must be at least 1".into()));
        }
        if self.max_rounds == 0 {
            return Err(Error::InvalidParameter(
                "max_rounds must be at least 1".into(),
            ));
        }
        if self.f > self.n {
            return Err(Error::InvalidParameter(format!(
                "f={} agents cannot occupy more than n={} processes",
                self.f, self.n
            )));
        }
        let required = self.model.required_processes(self.f);
        let satisfies = self.n >= required;
        if !satisfies && !self.allow_bound_violation {
            return Err(Error::InsufficientProcesses {
                model: self.model,
                n: self.n,
                f: self.f,
                required,
            });
        }
        // Link-fault rules are validated against the universe exactly once,
        // at build time, by the compilation below (a clean plan has no
        // rules to check); the engine re-compiles the same plan infallibly.
        // Deterministic p = 1 cuts are structure in disguise, so they are
        // subtracted from the realized graph before the connectivity and
        // resilience checks below — a plan cannot smuggle in a partition
        // that the equivalent Topology::Custom would be rejected for.
        let severed = if self.link_faults.is_clean() {
            Vec::new()
        } else {
            self.link_faults.compile(self.n)?.severed_arcs()
        };
        let validator = GraphValidator {
            model: self.model,
            f: self.f,
            n: self.n,
            required,
            allow_bound_violation: self.allow_bound_violation,
        };
        // The default Complete topology with no cuts is trivially connected
        // and needs no graph checks — skip realization entirely so the
        // common lowering path never allocates the n² matrix. Partial
        // descriptions are realized once here for validation; the engine
        // re-realizes deterministically from the same (n, seed) pair.
        if let Some(schedule) = &self.schedule {
            if !self.topology.is_complete() {
                return Err(Error::InvalidParameter(
                    "set either a static topology or a topology schedule, not both \
                     (schedule a static graph with TopologySchedule::Static)"
                        .into(),
                ));
            }
            if let TopologySchedule::SeededChurn { flip_rate, .. } = schedule {
                if *flip_rate >= 1.0 && self.n > 1 {
                    return Err(Error::InvalidParameter(
                        "churn flip_rate 1.0 severs every link in every round — a \
                         permanent partition, not transient churn"
                            .into(),
                    ));
                }
            }
            let realized = schedule.realize(self.n, self.seed)?;
            // A static graph or a churn base can never recover from
            // disconnection or sparsity, so the PR 3 checks apply in full.
            // Genuinely rotating periodic phases are transient under the
            // Record policy: a phase may be disconnected or sparse, but
            // the union over one period must still be connected — a
            // partition every phase shares is permanent. A schedule whose
            // phases are all identical is static in disguise (it also
            // lowers onto the static network path) and gets the full
            // checks regardless of policy.
            let transient_phases = matches!(schedule, TopologySchedule::Periodic { .. })
                && self.disconnection == DisconnectionPolicy::Record
                && realized.is_dynamic();
            if transient_phases {
                let union = union_of(self.n, realized.validation_graphs());
                validator.check(&union, &severed, false)?;
            } else {
                for graph in realized.validation_graphs() {
                    validator.check(graph, &severed, true)?;
                }
            }
        } else if !self.topology.is_complete() || !severed.is_empty() {
            let adjacency = self.topology.realize(self.n, self.seed)?;
            validator.check(&adjacency, &severed, true)?;
        }
        let function = self
            .function
            .unwrap_or_else(|| defaults::model_default_function(self.model, self.f));
        Ok(ProtocolConfig {
            model: self.model,
            n: self.n,
            f: self.f,
            epsilon: self.epsilon,
            max_rounds: self.max_rounds,
            mobility: self.mobility,
            corruption: self.corruption,
            topology: self.topology,
            schedule: self.schedule,
            link_faults: self.link_faults,
            disconnection: self.disconnection,
            function,
            seed: self.seed,
            bound_violation_allowed: self.allow_bound_violation,
            observe: self.observe,
        })
    }
}

/// The graph checks one realized communication graph goes through at build
/// time, shared by the static-topology and schedule paths.
struct GraphValidator {
    model: MobileModel,
    f: usize,
    n: usize,
    /// The model's replica requirement `n_Mi`.
    required: usize,
    allow_bound_violation: bool,
}

impl GraphValidator {
    /// Validates `graph` with the plan's deterministically severed arcs
    /// subtracted: connectivity is never waived (strong connectivity once
    /// cuts make the effective graph directed), and — when
    /// `enforce_resilience` — every process must hear at least the replica
    /// requirement per round unless bound violations are allowed.
    fn check(
        &self,
        graph: &Adjacency,
        severed: &[(usize, usize)],
        enforce_resilience: bool,
    ) -> Result<()> {
        if severed.is_empty() {
            if !graph.is_connected() {
                return Err(Error::DisconnectedTopology {
                    n: self.n,
                    components: graph.component_count(),
                });
            }
            if enforce_resilience && !graph.is_complete() {
                self.check_neighborhood(graph.min_closed_neighborhood())?;
            }
            return Ok(());
        }
        let effective =
            DirectedAdjacency::from_symmetric(graph).without_arcs(severed.iter().copied());
        if !effective.is_strongly_connected() {
            return Err(Error::DisconnectedTopology {
                n: self.n,
                components: effective.strong_component_count(),
            });
        }
        if enforce_resilience && !effective.is_complete() {
            self.check_neighborhood(effective.min_in_closed_neighborhood())?;
        }
        Ok(())
    }

    fn check_neighborhood(&self, min_neighborhood: usize) -> Result<()> {
        if min_neighborhood < self.required && !self.allow_bound_violation {
            return Err(Error::InsufficientConnectivity {
                model: self.model,
                f: self.f,
                min_neighborhood,
                required: self.required,
            });
        }
        Ok(())
    }
}

/// The union of several realized graphs over one universe: a link exists
/// when any of the graphs carries it. This is the graph a rotating
/// periodic schedule offers *across* one period — the quantity the
/// transient-disconnection reading needs connected.
fn union_of(n: usize, graphs: &[Adjacency]) -> Adjacency {
    let edges = (0..n).flat_map(|a| {
        (a + 1..n)
            .filter(move |&b| {
                graphs
                    .iter()
                    .any(|g| g.connected(ProcessId::new(a), ProcessId::new(b)))
            })
            .map(move |b| (a, b))
    });
    Adjacency::from_edges(n, edges).expect("union edges stay inside the universe")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbaa_types::FaultCounts;

    #[test]
    fn builder_defaults_are_sensible() {
        let config = ProtocolConfig::builder(MobileModel::Garay, 9, 2)
            .build()
            .unwrap();
        assert_eq!(config.model, MobileModel::Garay);
        assert_eq!(config.n, 9);
        assert_eq!(config.f, 2);
        assert!(config.satisfies_bound());
        assert_eq!(config.max_rounds, 1_000);
        // Default MSR instance uses the mapped fault counts: a=2, b=2 → τ=2.
        assert_eq!(config.tau(), FaultCounts::new(2, 0, 2).reduction_tau());
        assert!(!config.bound_violation_allowed);
    }

    #[test]
    fn bound_violation_rejected_by_default() {
        let err = ProtocolConfig::builder(MobileModel::Garay, 8, 2)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::InsufficientProcesses {
                required: 9,
                n: 8,
                f: 2,
                ..
            }
        ));
    }

    #[test]
    fn bound_violation_allowed_when_requested() {
        let config = ProtocolConfig::builder(MobileModel::Sasaki, 6, 1)
            .allow_bound_violation()
            .build()
            .unwrap();
        assert!(!config.satisfies_bound());
        assert!(config.bound_violation_allowed);
    }

    #[test]
    fn per_model_required_processes_enforced() {
        // Smallest legal n per model for f = 1 (Table 2).
        for (model, min_n) in [
            (MobileModel::Garay, 5),
            (MobileModel::Bonnet, 6),
            (MobileModel::Sasaki, 7),
            (MobileModel::Buhrman, 4),
        ] {
            assert!(ProtocolConfig::builder(model, min_n, 1).build().is_ok());
            assert!(ProtocolConfig::builder(model, min_n - 1, 1)
                .build()
                .is_err());
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(matches!(
            ProtocolConfig::builder(MobileModel::Buhrman, 0, 0).build(),
            Err(Error::InvalidParameter(_))
        ));
        assert!(matches!(
            ProtocolConfig::builder(MobileModel::Buhrman, 4, 1)
                .max_rounds(0)
                .build(),
            Err(Error::InvalidParameter(_))
        ));
        assert!(matches!(
            ProtocolConfig::builder(MobileModel::Buhrman, 4, 5)
                .allow_bound_violation()
                .build(),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn explicit_function_overrides_default() {
        let config = ProtocolConfig::builder(MobileModel::Buhrman, 7, 2)
            .function(MsrFunction::fault_tolerant_midpoint(2))
            .build()
            .unwrap();
        assert_eq!(config.function, MsrFunction::fault_tolerant_midpoint(2));
    }

    #[test]
    fn custom_knobs_are_kept() {
        let config = ProtocolConfig::builder(MobileModel::Bonnet, 11, 2)
            .epsilon(0.25)
            .max_rounds(17)
            .mobility(MobilityStrategy::Random)
            .corruption(CorruptionStrategy::BoundaryDrag)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(config.epsilon.get(), 0.25);
        assert_eq!(config.max_rounds, 17);
        assert_eq!(config.mobility, MobilityStrategy::Random);
        assert_eq!(config.corruption, CorruptionStrategy::BoundaryDrag);
        assert_eq!(config.seed, 99);
    }

    #[test]
    fn topology_defaults_to_complete() {
        let config = ProtocolConfig::builder(MobileModel::Garay, 9, 2)
            .build()
            .unwrap();
        assert_eq!(config.topology, Topology::Complete);
    }

    #[test]
    fn sparse_topology_below_the_neighborhood_bound_is_rejected() {
        // Garay with f = 1 needs every process to hear n_Mi = 5 processes;
        // a k = 1 ring offers closed neighbourhoods of 3.
        let err = ProtocolConfig::builder(MobileModel::Garay, 9, 1)
            .topology(Topology::Ring { k: 1 })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::InsufficientConnectivity {
                model: MobileModel::Garay,
                f: 1,
                min_neighborhood: 3,
                required: 5,
            }
        ));
        // The threshold experiments can opt in, exactly like the global
        // bound.
        let config = ProtocolConfig::builder(MobileModel::Garay, 9, 1)
            .topology(Topology::Ring { k: 1 })
            .allow_bound_violation()
            .build()
            .unwrap();
        assert_eq!(config.topology, Topology::Ring { k: 1 });
    }

    #[test]
    fn topology_at_the_neighborhood_bound_builds() {
        // A k = 2 ring gives closed neighbourhoods of exactly 5 = n_Mi.
        assert!(ProtocolConfig::builder(MobileModel::Garay, 9, 1)
            .topology(Topology::Ring { k: 2 })
            .build()
            .is_ok());
    }

    #[test]
    fn disconnected_topology_is_rejected_even_with_bound_violations_allowed() {
        let err = ProtocolConfig::builder(MobileModel::Buhrman, 4, 1)
            .topology(Topology::Ring { k: 0 })
            .allow_bound_violation()
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::DisconnectedTopology {
                n: 4,
                components: 4
            }
        ));
    }

    #[test]
    fn schedule_and_partial_topology_are_mutually_exclusive() {
        let err = ProtocolConfig::builder(MobileModel::Garay, 9, 1)
            .topology(Topology::Ring { k: 2 })
            .topology_schedule(TopologySchedule::Static(Topology::Complete))
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
        // The schedule alone carries the graph instead.
        let config = ProtocolConfig::builder(MobileModel::Garay, 9, 1)
            .topology_schedule(TopologySchedule::Static(Topology::Ring { k: 2 }))
            .build()
            .unwrap();
        assert_eq!(
            config.schedule,
            Some(TopologySchedule::Static(Topology::Ring { k: 2 }))
        );
    }

    #[test]
    fn static_schedule_gets_the_full_graph_checks() {
        // Disconnected: never waived, exactly like the static topology axis.
        let err = ProtocolConfig::builder(MobileModel::Buhrman, 4, 1)
            .topology_schedule(TopologySchedule::Static(Topology::Ring { k: 0 }))
            .allow_bound_violation()
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::DisconnectedTopology { n: 4, .. }));
        // Sparse below the neighbourhood bound: waivable.
        let err = ProtocolConfig::builder(MobileModel::Garay, 9, 1)
            .topology_schedule(TopologySchedule::Static(Topology::Ring { k: 1 }))
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InsufficientConnectivity { .. }));
    }

    #[test]
    fn churn_base_is_checked_but_periodic_phases_may_be_transient() {
        // A disconnected churn base can never recover: rejected.
        let err = ProtocolConfig::builder(MobileModel::Buhrman, 4, 1)
            .topology_schedule(TopologySchedule::SeededChurn {
                base: Topology::Ring { k: 0 },
                flip_rate: 0.1,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::DisconnectedTopology { .. }));
        // A churn over a sound base builds.
        assert!(ProtocolConfig::builder(MobileModel::Garay, 9, 1)
            .topology_schedule(TopologySchedule::SeededChurn {
                base: Topology::Complete,
                flip_rate: 0.3,
            })
            .build()
            .is_ok());
        // Periodic phases under the Record policy may be individually
        // disconnected (the union over the cycle is the experimenter's
        // responsibility)…
        let phases = vec![Topology::Ring { k: 0 }, Topology::Complete];
        assert!(ProtocolConfig::builder(MobileModel::Buhrman, 4, 1)
            .topology_schedule(TopologySchedule::Periodic {
                phases: phases.clone(),
            })
            .build()
            .is_ok());
        // …but the Reject policy holds every phase to the static checks.
        let err = ProtocolConfig::builder(MobileModel::Buhrman, 4, 1)
            .topology_schedule(TopologySchedule::Periodic { phases })
            .disconnection(DisconnectionPolicy::Reject)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::DisconnectedTopology { .. }));
    }

    #[test]
    fn deterministic_cuts_join_the_connectivity_and_resilience_checks() {
        // Severing every link is a permanent partition — rejected even on
        // the complete topology, under either disconnection policy.
        for policy in [DisconnectionPolicy::Record, DisconnectionPolicy::Reject] {
            let err = ProtocolConfig::builder(MobileModel::Buhrman, 4, 0)
                .link_faults(LinkFaultPlan::new().omit_all(1.0))
                .disconnection(policy)
                .build()
                .unwrap_err();
            assert!(matches!(
                err,
                Error::DisconnectedTopology { components: 4, .. }
            ));
        }
        // A single one-way cut keeps the complete graph strongly connected.
        assert!(ProtocolConfig::builder(MobileModel::Garay, 9, 1)
            .link_faults(LinkFaultPlan::new().cut(0, 1))
            .build()
            .is_ok());
        // Cutting a bridge in both directions partitions a path graph.
        let path =
            Topology::Custom(mbaa_net::Adjacency::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap());
        let err = ProtocolConfig::builder(MobileModel::Buhrman, 4, 0)
            .topology(path)
            .link_faults(LinkFaultPlan::new().cut(1, 2).cut(2, 1))
            .allow_bound_violation()
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::DisconnectedTopology { components: 2, .. }
        ));
        // Cuts also count against the degree-dependent resilience bound: a
        // k = 2 ring sits exactly at Garay's requirement of 5, and one
        // inbound cut drops a closed in-neighbourhood to 4.
        let err = ProtocolConfig::builder(MobileModel::Garay, 9, 1)
            .topology(Topology::Ring { k: 2 })
            .link_faults(LinkFaultPlan::new().cut(1, 0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::InsufficientConnectivity {
                min_neighborhood: 4,
                required: 5,
                ..
            }
        ));
        assert!(ProtocolConfig::builder(MobileModel::Garay, 9, 1)
            .topology(Topology::Ring { k: 2 })
            .link_faults(LinkFaultPlan::new().cut(1, 0))
            .allow_bound_violation()
            .build()
            .is_ok());
    }

    #[test]
    fn degenerate_schedules_cannot_hide_permanent_partitions() {
        // A periodic schedule whose phases are all identical is static in
        // disguise: the Record policy's transient exemption does not apply.
        for phases in [
            vec![Topology::Ring { k: 0 }],
            vec![Topology::Ring { k: 0 }, Topology::Ring { k: 0 }],
        ] {
            let err = ProtocolConfig::builder(MobileModel::Buhrman, 4, 0)
                .topology_schedule(TopologySchedule::Periodic { phases })
                .build()
                .unwrap_err();
            assert!(matches!(err, Error::DisconnectedTopology { .. }));
        }
        // Genuinely rotating phases may each be disconnected, but their
        // union over one period must be connected: two phases confined to
        // the same two islands are a permanent partition.
        let islands = vec![
            Topology::Custom(mbaa_net::Adjacency::from_edges(4, [(0, 1)]).unwrap()),
            Topology::Custom(mbaa_net::Adjacency::from_edges(4, [(2, 3)]).unwrap()),
        ];
        let err = ProtocolConfig::builder(MobileModel::Buhrman, 4, 0)
            .topology_schedule(TopologySchedule::Periodic { phases: islands })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::DisconnectedTopology { components: 2, .. }
        ));
        // Churn at flip_rate 1.0 never delivers anything: rejected.
        let err = ProtocolConfig::builder(MobileModel::Buhrman, 4, 0)
            .topology_schedule(TopologySchedule::SeededChurn {
                base: Topology::Complete,
                flip_rate: 1.0,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
    }

    #[test]
    fn link_fault_rules_are_validated_at_build() {
        let err = ProtocolConfig::builder(MobileModel::Buhrman, 4, 1)
            .link_faults(LinkFaultPlan::new().omit(0, 9, 0.5))
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::UnknownProcess { n: 4, .. }));
        let err = ProtocolConfig::builder(MobileModel::Buhrman, 4, 1)
            .link_faults(LinkFaultPlan::new().omit(0, 1, 2.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
        let config = ProtocolConfig::builder(MobileModel::Buhrman, 4, 1)
            .link_faults(LinkFaultPlan::new().omit(0, 1, 0.5).delay(1, 2, 3))
            .disconnection(DisconnectionPolicy::Reject)
            .build()
            .unwrap();
        assert!(!config.link_faults.is_clean());
        assert_eq!(config.disconnection, DisconnectionPolicy::Reject);
        assert_eq!(config.schedule, None);
    }

    #[test]
    fn zero_agents_is_a_legal_configuration() {
        let config = ProtocolConfig::builder(MobileModel::Garay, 3, 0)
            .build()
            .unwrap();
        assert!(config.satisfies_bound());
        assert_eq!(config.tau(), 0);
    }
}
