//! Per-round configuration snapshots and their equivalence (Definitions
//! 5–10 of the paper). The paper calls these *configurations*; the type is
//! named [`RoundSnapshot`] to keep it apart from [`crate::ProtocolConfig`],
//! the knob set of one execution.

use std::fmt;

use serde::{Deserialize, Serialize};

use mbaa_types::{FaultState, Interval, ProcessId, ProcessSet, Value, ValueMultiset};

/// The state of one process in a configuration: its failure state and the
/// value it proposes in the next round (Definition 5's
/// 〈failure state, proposing value〉 tuple).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessTuple {
    /// The failure state of the process at this round.
    pub state: FaultState,
    /// The value the process will propose (meaningless for faulty
    /// processes, whose messages the adversary controls anyway).
    pub value: Value,
}

/// A configuration `C_r`: one [`ProcessTuple`] per process (Definition 5).
///
/// Configurations are snapshots taken at round boundaries; the engine
/// records one per executed round so analyses (and the mobile-vs-static
/// equivalence experiment) can inspect the whole computation.
///
/// # Example
///
/// ```
/// use mbaa_core::RoundSnapshot;
/// use mbaa_types::{FaultState, Value};
///
/// let config = RoundSnapshot::new(vec![
///     (FaultState::Correct, Value::new(0.1)),
///     (FaultState::Faulty, Value::new(9.9)),
///     (FaultState::Cured, Value::new(0.4)),
///     (FaultState::Correct, Value::new(0.3)),
/// ]);
/// assert_eq!(config.correct_set().len(), 2);
/// assert_eq!(config.non_faulty_values().len(), 3);
/// assert!(config.correct_values().diameter() < 0.3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundSnapshot {
    tuples: Vec<ProcessTuple>,
}

impl RoundSnapshot {
    /// Creates a configuration from `(state, value)` pairs, one per process.
    ///
    /// # Panics
    ///
    /// Panics if `tuples` is empty.
    #[must_use]
    pub fn new(tuples: Vec<(FaultState, Value)>) -> Self {
        assert!(
            !tuples.is_empty(),
            "configuration needs at least one process"
        );
        RoundSnapshot {
            tuples: tuples
                .into_iter()
                .map(|(state, value)| ProcessTuple { state, value })
                .collect(),
        }
    }

    /// The number of processes.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.tuples.len()
    }

    /// The tuple of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    #[must_use]
    pub fn tuple(&self, p: ProcessId) -> ProcessTuple {
        self.tuples[p.index()]
    }

    /// Iterates over `(process, tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, ProcessTuple)> + '_ {
        self.tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (ProcessId::new(i), *t))
    }

    /// The set of processes in the given failure state.
    #[must_use]
    pub fn set_in_state(&self, state: FaultState) -> ProcessSet {
        ProcessSet::from_indices(
            self.universe(),
            self.tuples
                .iter()
                .enumerate()
                .filter_map(|(i, t)| (t.state == state).then_some(i)),
        )
    }

    /// The set of correct processes.
    #[must_use]
    pub fn correct_set(&self) -> ProcessSet {
        self.set_in_state(FaultState::Correct)
    }

    /// The set of cured processes.
    #[must_use]
    pub fn cured_set(&self) -> ProcessSet {
        self.set_in_state(FaultState::Cured)
    }

    /// The set of faulty processes.
    #[must_use]
    pub fn faulty_set(&self) -> ProcessSet {
        self.set_in_state(FaultState::Faulty)
    }

    /// The multiset of values proposed by *correct* processes.
    #[must_use]
    pub fn correct_values(&self) -> ValueMultiset {
        self.tuples
            .iter()
            .filter(|t| t.state.is_correct())
            .map(|t| t.value)
            .collect()
    }

    /// The multiset of values held by *non-faulty* (correct or cured)
    /// processes — the multiset `U` the agreement properties quantify over.
    #[must_use]
    pub fn non_faulty_values(&self) -> ValueMultiset {
        self.tuples
            .iter()
            .filter(|t| t.state.is_non_faulty())
            .map(|t| t.value)
            .collect()
    }

    /// The range of the correct processes' values, or `None` when no process
    /// is correct.
    #[must_use]
    pub fn correct_range(&self) -> Option<Interval> {
        self.correct_values().range()
    }

    /// The diameter of the correct processes' values.
    #[must_use]
    pub fn correct_diameter(&self) -> f64 {
        self.correct_values().diameter()
    }

    /// The number of correct tuples whose value lies inside `envelope` —
    /// the count of 〈correct, correct value〉 tuples used by the
    /// configuration-equivalence definition (Definition 9).
    #[must_use]
    pub fn correct_tuples_within(&self, envelope: &Interval) -> usize {
        self.tuples
            .iter()
            .filter(|t| t.state.is_correct() && envelope.contains(t.value))
            .count()
    }

    /// RoundSnapshot equivalence in the sense of Definition 9, relative to a
    /// validity envelope: `self` is equivalent to `other` when both have the
    /// same universe, the same multiset of correct values would be produced
    /// (here: identical correct-value ranges), and `self` has at least as
    /// many 〈correct, in-envelope value〉 tuples as `other`.
    #[must_use]
    pub fn is_equivalent_to(&self, other: &RoundSnapshot, envelope: &Interval) -> bool {
        self.universe() == other.universe()
            && self.correct_tuples_within(envelope) >= other.correct_tuples_within(envelope)
    }
}

impl fmt::Display for RoundSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={}, correct={}, cured={}, faulty={}, δ(correct)={}",
            self.universe(),
            self.correct_set().len(),
            self.cured_set().len(),
            self.faulty_set().len(),
            self.correct_diameter()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RoundSnapshot {
        RoundSnapshot::new(vec![
            (FaultState::Correct, Value::new(0.0)),
            (FaultState::Correct, Value::new(1.0)),
            (FaultState::Cured, Value::new(5.0)),
            (FaultState::Faulty, Value::new(99.0)),
        ])
    }

    #[test]
    fn sets_partition_the_universe() {
        let c = sample();
        assert_eq!(c.universe(), 4);
        assert_eq!(c.correct_set().len(), 2);
        assert_eq!(c.cured_set().len(), 1);
        assert_eq!(c.faulty_set().len(), 1);
        let all = c.correct_set().union(&c.cured_set()).union(&c.faulty_set());
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn value_multisets() {
        let c = sample();
        assert_eq!(c.correct_values().len(), 2);
        assert_eq!(c.correct_diameter(), 1.0);
        assert_eq!(c.non_faulty_values().len(), 3);
        assert_eq!(c.non_faulty_values().max(), Some(Value::new(5.0)));
        let range = c.correct_range().unwrap();
        assert_eq!(range.lo(), Value::new(0.0));
        assert_eq!(range.hi(), Value::new(1.0));
    }

    #[test]
    fn tuple_accessor_and_iteration() {
        let c = sample();
        let t = c.tuple(ProcessId::new(3));
        assert_eq!(t.state, FaultState::Faulty);
        assert_eq!(t.value, Value::new(99.0));
        assert_eq!(c.iter().count(), 4);
    }

    #[test]
    fn equivalence_counts_in_envelope_correct_tuples() {
        let envelope = Interval::new(Value::new(0.0), Value::new(1.0));
        let mobile = sample();
        // A static image with the same number of correct in-envelope tuples.
        let static_image = RoundSnapshot::new(vec![
            (FaultState::Correct, Value::new(0.2)),
            (FaultState::Correct, Value::new(0.9)),
            (FaultState::Faulty, Value::new(7.0)),
            (FaultState::Faulty, Value::new(-7.0)),
        ]);
        assert_eq!(mobile.correct_tuples_within(&envelope), 2);
        assert!(mobile.is_equivalent_to(&static_image, &envelope));

        // An image with more correct tuples is not dominated by the mobile one.
        let richer = RoundSnapshot::new(vec![
            (FaultState::Correct, Value::new(0.2)),
            (FaultState::Correct, Value::new(0.4)),
            (FaultState::Correct, Value::new(0.9)),
            (FaultState::Faulty, Value::new(7.0)),
        ]);
        assert!(!mobile.is_equivalent_to(&richer, &envelope));
        // Universes must match.
        let smaller = RoundSnapshot::new(vec![(FaultState::Correct, Value::new(0.5))]);
        assert!(!mobile.is_equivalent_to(&smaller, &envelope));
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_configuration_panics() {
        let _ = RoundSnapshot::new(vec![]);
    }

    #[test]
    fn display_summarises() {
        let c = sample();
        let s = c.to_string();
        assert!(s.contains("correct=2"));
        assert!(s.contains("faulty=1"));
    }
}
