//! The Mobile-Byzantine-to-Mixed-Mode mapping (Table 1), both as the
//! theoretical statement of Lemmas 1–4 and as an empirical classification of
//! instrumented executions.
//!
//! The theoretical table says how faulty and cured processes of each model
//! behave when projected onto the mixed-mode fault classes:
//!
//! | | M1 (Garay) | M2 (Bonnet) | M3 (Sasaki) | M4 (Buhrman) |
//! |---|---|---|---|---|
//! | faulty | asymmetric | asymmetric | asymmetric | asymmetric |
//! | cured  | benign     | symmetric  | asymmetric | — |
//!
//! The empirical side runs a real execution under a worst-case (split)
//! adversary, looks at what every sender actually delivered to every
//! receiver, and classifies each faulty / cured sender's observable
//! behaviour. The benchmark `table1_mapping` prints both tables side by
//! side.

use std::fmt;

use serde::{Deserialize, Serialize};

use mbaa_net::ObservedBehavior;
use mbaa_types::{FaultState, MixedFaultClass, MobileModel, ProcessId};

use crate::MobileRunOutcome;

/// One row of the theoretical Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TheoreticalMapping {
    /// The mobile Byzantine model.
    pub model: MobileModel,
    /// The mixed-mode class of an agent-occupied (faulty) process.
    pub faulty_class: MixedFaultClass,
    /// The mixed-mode class of a cured process, or `None` when the model has
    /// no cured processes during the send phase (Buhrman).
    pub cured_class: Option<MixedFaultClass>,
}

/// The theoretical Table 1, one entry per model (Lemmas 1–4).
#[must_use]
pub fn theoretical_table() -> Vec<TheoreticalMapping> {
    MobileModel::ALL
        .iter()
        .map(|&model| TheoreticalMapping {
            model,
            faulty_class: MixedFaultClass::Asymmetric,
            cured_class: model.cured_fault_class(),
        })
        .collect()
}

/// Counts of observed behaviours for one ground-truth role (faulty or cured)
/// across an execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BehaviorCounts {
    /// Rounds in which the sender omitted every message.
    pub benign: usize,
    /// Rounds in which the sender broadcast one (possibly wrong) value.
    pub symmetric: usize,
    /// Rounds in which the sender delivered different values to different
    /// receivers.
    pub asymmetric: usize,
}

impl BehaviorCounts {
    /// Total number of classified observations.
    #[must_use]
    pub fn total(&self) -> usize {
        self.benign + self.symmetric + self.asymmetric
    }

    /// The mixed-mode class observed most often, or `None` when nothing was
    /// observed.
    #[must_use]
    pub fn dominant(&self) -> Option<MixedFaultClass> {
        if self.total() == 0 {
            return None;
        }
        let max = self.benign.max(self.symmetric).max(self.asymmetric);
        if max == self.asymmetric {
            Some(MixedFaultClass::Asymmetric)
        } else if max == self.symmetric {
            Some(MixedFaultClass::Symmetric)
        } else {
            Some(MixedFaultClass::Benign)
        }
    }

    fn record(&mut self, class: MixedFaultClass) {
        match class {
            MixedFaultClass::Benign => self.benign += 1,
            MixedFaultClass::Symmetric => self.symmetric += 1,
            MixedFaultClass::Asymmetric => self.asymmetric += 1,
        }
    }
}

impl fmt::Display for BehaviorCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "benign={}, symmetric={}, asymmetric={}",
            self.benign, self.symmetric, self.asymmetric
        )
    }
}

/// The empirical Table 1 entry of one model: how the faulty and cured
/// processes of a real execution behaved, round by round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmpiricalMapping {
    /// The model the execution ran under.
    pub model: MobileModel,
    /// Observed behaviour of agent-occupied processes.
    pub faulty: BehaviorCounts,
    /// Observed behaviour of cured processes.
    pub cured: BehaviorCounts,
}

impl EmpiricalMapping {
    /// Returns `true` when the dominant observed classes match the
    /// theoretical Table 1 row for this model.
    #[must_use]
    pub fn matches_theory(&self) -> bool {
        let faulty_ok = self.faulty.dominant() == Some(MixedFaultClass::Asymmetric);
        let cured_ok = match self.model.cured_fault_class() {
            Some(expected) => self.cured.dominant() == Some(expected),
            // Buhrman: there must be no cured observations at all.
            None => self.cured.total() == 0,
        };
        faulty_ok && cured_ok
    }
}

/// Classifies the observable behaviour of each faulty and cured sender in an
/// execution, producing the empirical Table 1 entry for its model.
///
/// The classification follows the mixed-mode definitions: a sender that
/// omitted everything is benign, a sender that delivered the same value to
/// every receiver is symmetric (its behaviour is perceived identically), and
/// a sender that delivered different values (or a mix of values and
/// omissions) is asymmetric. Correct senders are not counted.
///
/// # Panics
///
/// Panics when `outcome` executed rounds but carries no snapshots or
/// trace — the raw material of the classification. Runs recorded at
/// [`Observe::Snapshots`](crate::Observe::Snapshots) or
/// [`Observe::Summary`](crate::Observe::Summary) cannot be classified;
/// re-run at [`Observe::Full`](crate::Observe::Full) (the default).
#[must_use]
pub fn classify_execution(model: MobileModel, outcome: &MobileRunOutcome) -> EmpiricalMapping {
    assert!(
        outcome.rounds_executed == 0
            || (!outcome.configurations.is_empty() && !outcome.trace.is_empty()),
        "classify_execution needs the per-round snapshots and the network trace; \
         this outcome was recorded below Observe::Full — re-run the scenario with \
         the default observability level"
    );
    let mut faulty = BehaviorCounts::default();
    let mut cured = BehaviorCounts::default();

    for (round_idx, configuration) in outcome.configurations.iter().enumerate() {
        let Some(round_trace) = outcome.trace.get(round_idx) else {
            // The final configuration may have no matching trace when the
            // run terminated before its send phase.
            continue;
        };
        for (p, tuple) in configuration.iter() {
            let counts = match tuple.state {
                FaultState::Correct => continue,
                FaultState::Faulty => &mut faulty,
                FaultState::Cured => &mut cured,
            };
            let class = observed_class(round_trace.observation(p).classify(None));
            counts.record(class);
        }
    }

    EmpiricalMapping {
        model,
        faulty,
        cured,
    }
}

/// Projects an observed behaviour of a *non-correct* sender onto the
/// mixed-mode class it exhibits.
fn observed_class(behavior: ObservedBehavior) -> MixedFaultClass {
    match behavior {
        ObservedBehavior::Benign => MixedFaultClass::Benign,
        // A non-correct sender that broadcast uniformly is, by definition,
        // perceived identically by everyone: a symmetric fault — regardless
        // of whether the value happens to look plausible.
        ObservedBehavior::CorrectBroadcast | ObservedBehavior::Symmetric => {
            MixedFaultClass::Symmetric
        }
        ObservedBehavior::Asymmetric => MixedFaultClass::Asymmetric,
    }
}

/// Looks up which processes were cured in a given round of an execution —
/// convenience for reports.
#[must_use]
pub fn cured_in_round(outcome: &MobileRunOutcome, round_idx: usize) -> Vec<ProcessId> {
    outcome
        .configurations
        .get(round_idx)
        .map(|c| c.cured_set().iter().collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MobileEngine, ProtocolConfig};
    use mbaa_adversary::{CorruptionStrategy, MobilityStrategy};
    use mbaa_types::Value;

    fn run(model: MobileModel, n: usize, f: usize) -> MobileRunOutcome {
        let config = ProtocolConfig::builder(model, n, f)
            .epsilon(1e-9)
            .max_rounds(40)
            .corruption(CorruptionStrategy::split_attack())
            .mobility(MobilityStrategy::RoundRobin)
            .seed(23)
            .build()
            .unwrap();
        let inputs: Vec<Value> = (0..n).map(|i| Value::new(i as f64)).collect();
        MobileEngine::new(config).run(&inputs).unwrap()
    }

    #[test]
    fn theoretical_table_matches_lemmas() {
        let table = theoretical_table();
        assert_eq!(table.len(), 4);
        for row in &table {
            assert_eq!(row.faulty_class, MixedFaultClass::Asymmetric);
        }
        assert_eq!(table[0].cured_class, Some(MixedFaultClass::Benign));
        assert_eq!(table[1].cured_class, Some(MixedFaultClass::Symmetric));
        assert_eq!(table[2].cured_class, Some(MixedFaultClass::Asymmetric));
        assert_eq!(table[3].cured_class, None);
    }

    #[test]
    fn empirical_classification_reproduces_table_1() {
        for model in MobileModel::ALL {
            let f = 2;
            let n = model.required_processes(f);
            let outcome = run(model, n, f);
            let mapping = classify_execution(model, &outcome);
            assert!(
                mapping.matches_theory(),
                "{model}: faulty {:?} cured {:?}",
                mapping.faulty,
                mapping.cured
            );
        }
    }

    #[test]
    fn behavior_counts_dominant() {
        let mut c = BehaviorCounts::default();
        assert_eq!(c.dominant(), None);
        c.record(MixedFaultClass::Benign);
        c.record(MixedFaultClass::Asymmetric);
        c.record(MixedFaultClass::Asymmetric);
        assert_eq!(c.dominant(), Some(MixedFaultClass::Asymmetric));
        assert_eq!(c.total(), 3);
        assert!(c.to_string().contains("asymmetric=2"));
    }

    #[test]
    fn buhrman_has_no_cured_observations() {
        let outcome = run(MobileModel::Buhrman, 7, 2);
        let mapping = classify_execution(MobileModel::Buhrman, &outcome);
        assert_eq!(mapping.cured.total(), 0);
        assert!(mapping.faulty.total() > 0);
    }

    #[test]
    fn garay_cured_is_benign_bonnet_symmetric_sasaki_asymmetric() {
        let garay = classify_execution(MobileModel::Garay, &run(MobileModel::Garay, 9, 2));
        assert_eq!(garay.cured.dominant(), Some(MixedFaultClass::Benign));

        let bonnet = classify_execution(MobileModel::Bonnet, &run(MobileModel::Bonnet, 11, 2));
        assert_eq!(bonnet.cured.dominant(), Some(MixedFaultClass::Symmetric));

        let sasaki = classify_execution(MobileModel::Sasaki, &run(MobileModel::Sasaki, 13, 2));
        assert_eq!(sasaki.cured.dominant(), Some(MixedFaultClass::Asymmetric));
    }

    #[test]
    #[should_panic(expected = "Observe::Full")]
    fn classification_rejects_trace_less_outcomes() {
        let config = ProtocolConfig::builder(MobileModel::Garay, 9, 2)
            .epsilon(1e-9)
            .max_rounds(40)
            .seed(23)
            .observe(crate::Observe::Summary)
            .build()
            .unwrap();
        let inputs: Vec<Value> = (0..9).map(|i| Value::new(i as f64)).collect();
        let outcome = MobileEngine::new(config).run(&inputs).unwrap();
        // Silently returning all-zero counts would let matches_theory pass
        // vacuously for Buhrman-style expectations; fail loudly instead.
        let _ = classify_execution(MobileModel::Garay, &outcome);
    }

    #[test]
    fn cured_in_round_reports_processes() {
        let outcome = run(MobileModel::Garay, 9, 2);
        // Round 0 never has cured processes; later rounds may.
        assert!(cured_in_round(&outcome, 0).is_empty());
        assert!(cured_in_round(&outcome, 9_999).is_empty());
        if outcome.configurations.len() > 1 {
            assert_eq!(cured_in_round(&outcome, 1).len(), 2);
        }
    }
}
