//! The protocol engine: MSR approximate agreement under a mobile Byzantine
//! adversary.

use serde::{Deserialize, Serialize};

use mbaa_adversary::{AdversaryView, MobileAdversary, RoundFaultPlan};
use mbaa_msr::{ConvergenceReport, VotingFunction};
use mbaa_net::{
    DeliveryMatrix, NetworkStats, NetworkTrace, Outbox, SyncNetwork, Topology, TopologySchedule,
};
use mbaa_obs::{ConvergenceEvent, NoopObserver, Observer, Phase, RoundEvent, RunEndEvent};
use mbaa_types::{
    Epsilon, Error, FaultState, Interval, MobileModel, ProcessId, Result, Round, Value,
    ValueMultiset,
};

use crate::{ProtocolConfig, RoundSnapshot};

/// The outcome of one mobile execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobileRunOutcome {
    /// Whether ε-agreement among non-faulty processes was reached within the
    /// round budget.
    pub reached_agreement: bool,
    /// The number of rounds executed.
    pub rounds_executed: usize,
    /// The final internal value of every process.
    pub final_votes: Vec<Value>,
    /// The failure state of every process during the *last executed* round.
    pub final_states: Vec<FaultState>,
    /// The convergence history (diameter of non-faulty values per round).
    pub report: ConvergenceReport,
    /// The range of the non-faulty processes' initial values — the validity
    /// envelope of the Approximate Agreement specification.
    pub validity_envelope: Interval,
    /// The agreement tolerance the run was checked against.
    pub epsilon: Epsilon,
    /// One configuration snapshot per executed round, taken at the beginning
    /// of the round (after agent movement and state corruption). Empty when
    /// the run's [`crate::Observe`] level is [`crate::Observe::Summary`].
    pub configurations: Vec<RoundSnapshot>,
    /// The full message trace (what every sender delivered to every
    /// receiver, per round) — the raw material of the Table 1 mapping,
    /// moved (never cloned) out of the network at the end of the run. Empty
    /// unless the run's [`crate::Observe`] level is
    /// [`crate::Observe::Full`].
    pub trace: NetworkTrace,
    /// The network's traffic accounting: deliveries, sender omissions,
    /// structural non-deliveries, and — on a link-faulted or dynamic
    /// network — the separately counted link omissions, delayed
    /// deliveries, in-flight slots, and disconnected rounds.
    pub network_stats: NetworkStats,
}

impl MobileRunOutcome {
    /// The set of processes that were non-faulty during the last executed
    /// round (the processes the agreement properties speak about).
    #[must_use]
    pub fn final_non_faulty(&self) -> Vec<ProcessId> {
        self.final_states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_non_faulty().then_some(ProcessId::new(i)))
            .collect()
    }

    /// The multiset of final values held by non-faulty processes.
    #[must_use]
    pub fn final_non_faulty_values(&self) -> ValueMultiset {
        self.final_non_faulty()
            .into_iter()
            .map(|p| self.final_votes[p.index()])
            .collect()
    }

    /// The final diameter of the non-faulty processes' values.
    #[must_use]
    pub fn final_diameter(&self) -> f64 {
        self.final_non_faulty_values().diameter()
    }

    /// Returns `true` when the ε-agreement property holds on the final
    /// non-faulty values.
    #[must_use]
    pub fn epsilon_agreement_holds(&self) -> bool {
        self.epsilon.covers_diameter(self.final_diameter())
    }

    /// Returns `true` when the validity property holds: every non-faulty
    /// process' final value lies within the range of the non-faulty initial
    /// values.
    #[must_use]
    pub fn validity_holds(&self) -> bool {
        self.final_non_faulty_values()
            .iter()
            .all(|v| self.validity_envelope.contains(v))
    }
}

/// Runs an approximate agreement protocol under one of the four mobile
/// Byzantine models.
///
/// Each round the engine
///
/// 1. lets the adversary move its agents and corrupt the states of the
///    processes they abandon ([`MobileAdversary::begin_round`]),
/// 2. executes the send phase with the model-specific cured behaviour
///    (Garay: aware, stays silent; Bonnet: unaware, broadcasts its possibly
///    corrupted state; Sasaki: unaware, flushes the poisoned queue the agent
///    left behind; Buhrman: no cured senders exist),
/// 3. delivers all messages through the reliable synchronous network, and
/// 4. has every non-faulty process apply the configured voting function to
///    the multiset it received.
///
/// The run stops as soon as the non-faulty values are within ε of each other
/// or the round budget is exhausted.
#[derive(Debug)]
pub struct MobileEngine {
    config: ProtocolConfig,
}

impl MobileEngine {
    /// Creates an engine for a validated configuration.
    #[must_use]
    pub fn new(config: ProtocolConfig) -> Self {
        MobileEngine { config }
    }

    /// The configuration this engine runs.
    #[must_use]
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Runs the protocol from the given initial values (one per process).
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongInputCount`] when `initial_values` does not
    /// hold exactly `n` values.
    pub fn run(&self, initial_values: &[Value]) -> Result<MobileRunOutcome> {
        self.run_with_function(&self.config.function, initial_values)
    }

    /// Runs the protocol with an [`Observer`] attached: the engine emits a
    /// seed-keyed [`RoundEvent`] per round plus run-level
    /// [`ConvergenceEvent`]/[`RunEndEvent`]s, and delimits the four round
    /// phases via the `phase_start`/`phase_end` hooks. The observer never
    /// influences protocol state — the outcome is bit-identical to
    /// [`MobileEngine::run`], and with a [`NoopObserver`] the telemetry
    /// path monomorphizes away entirely (steady-state rounds stay
    /// allocation-free).
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongInputCount`] when `initial_values` does not
    /// hold exactly `n` values.
    pub fn run_observed<O: Observer>(
        &self,
        initial_values: &[Value],
        observer: &mut O,
    ) -> Result<MobileRunOutcome> {
        self.run_with_function_observed(&self.config.function, initial_values, observer)
    }

    /// Runs the protocol with an explicit voting function (used to compare
    /// MSR instances and non-MSR baselines under identical adversaries).
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongInputCount`] when `initial_values` does not
    /// hold exactly `n` values.
    pub fn run_with_function(
        &self,
        function: &dyn VotingFunction,
        initial_values: &[Value],
    ) -> Result<MobileRunOutcome> {
        self.run_with_function_observed(function, initial_values, &mut NoopObserver)
    }

    /// [`MobileEngine::run_with_function`] with an [`Observer`] attached —
    /// the single implementation every other `run*` entry point lowers to.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongInputCount`] when `initial_values` does not
    /// hold exactly `n` values.
    pub fn run_with_function_observed<O: Observer>(
        &self,
        function: &dyn VotingFunction,
        initial_values: &[Value],
        observer: &mut O,
    ) -> Result<MobileRunOutcome> {
        let cfg = &self.config;
        let n = cfg.n;
        if initial_values.len() != n {
            return Err(Error::WrongInputCount {
                provided: initial_values.len(),
                expected: n,
            });
        }

        let observe = cfg.observe;
        let mut votes: Vec<Value> = initial_values.to_vec();
        let mut states: Vec<FaultState> = vec![FaultState::Correct; n];
        let mut adversary =
            MobileAdversary::new(cfg.model, n, cfg.f, cfg.mobility, cfg.corruption, cfg.seed);
        // The complete topology takes the unmasked fast path — bit-identical
        // to the pre-topology engine. Partial descriptions realize to the
        // same graph the builder validated (deterministic in (n, seed));
        // `with_topology` still lowers rings that normalized to complete
        // onto the fast path, and `with_dynamics` lowers a static schedule
        // with a clean link-fault plan onto the same static paths. Trace
        // recording is purely observational, so the Observe level can turn
        // it off without changing a single delivered slot.
        let mut network = if cfg.schedule.is_none() && cfg.link_faults.is_clean() {
            match &cfg.topology {
                Topology::Complete => SyncNetwork::new(n),
                partial => SyncNetwork::with_topology(partial.realize(n, cfg.seed)?),
            }
        } else {
            let schedule = cfg
                .schedule
                .clone()
                .unwrap_or_else(|| TopologySchedule::Static(cfg.topology.clone()));
            SyncNetwork::with_dynamics(
                schedule.realize(n, cfg.seed)?,
                &cfg.link_faults,
                cfg.disconnection,
                cfg.seed,
            )?
        }
        .with_trace_recording(observe.records_trace());
        let mut configurations = Vec::new();

        // Telemetry state. `telemetry` is a monomorphization constant:
        // with a `NoopObserver` every `if telemetry` block below is dead
        // code and the round loop compiles exactly as it did without an
        // observer parameter.
        let telemetry = observer.enabled();
        let mut prev_stats = network.stats();
        let mut prev_diameter = 0.0_f64;
        let mut corruptions_total: u64 = 0;

        // The round scratch: every per-round buffer is allocated here, once
        // per run, and reused in place by every round (see [`RoundScratch`]
        // for the invariants). Under `Observe::Summary` on a static
        // network, steady-state rounds therefore perform no heap allocation
        // at all (asserted by the allocation-regression test in
        // `tests/alloc_regression.rs`).
        let RoundScratch {
            mut plan,
            mut outboxes,
            mut deliveries,
            mut received,
        } = RoundScratch::new(n);

        // Until the adversary has placed its agents we do not know which
        // initial values count as non-faulty, so the validity envelope and
        // the initial diameter are fixed inside the first loop iteration.
        let mut validity_envelope: Option<Interval> = None;
        let mut report: Option<ConvergenceReport> = None;
        let mut reached = false;
        let mut rounds_executed = 0;

        // The steady-state round loop: `mbaa-analyze` statically rejects
        // allocating idioms in here (the complement of the dynamic
        // allocator-counter proof in `tests/alloc_regression.rs`); the
        // first-round initialization and the opt-in snapshot recording are
        // waived inline below.
        // mbaa: alloc-free
        for round_idx in 0..cfg.max_rounds {
            if reached {
                break;
            }
            let round = Round::new(round_idx as u64);
            observer.phase_start(Phase::AdversaryPlan);

            // The adversary sees everything; the "correct range" it reasons
            // about is the range of the currently non-faulty processes'
            // values (all values before the first placement).
            let visible_range = Interval::hull(
                votes
                    .iter()
                    .zip(&states)
                    .filter_map(|(v, s)| s.is_non_faulty().then_some(*v)),
            )
            .unwrap_or_else(|| Interval::point(votes[0]));
            let view = AdversaryView {
                round,
                votes: &votes,
                correct_range: visible_range,
            };
            adversary.begin_round_into(&view, &mut plan);

            // Agents that left a process corrupted the state behind them.
            let mut corrupted_this_round: u32 = 0;
            for p in plan.cured.iter() {
                if let Some(corrupted) = plan.corrupted_states[p.index()] {
                    votes[p.index()] = corrupted;
                    corrupted_this_round += 1;
                }
            }

            // Track per-process failure states for this round.
            for (i, state) in states.iter_mut().enumerate() {
                let p = ProcessId::new(i);
                *state = if plan.faulty.contains(p) {
                    FaultState::Faulty
                } else if plan.cured.contains(p) {
                    FaultState::Cured
                } else {
                    FaultState::Correct
                };
            }
            observer.phase_end(Phase::AdversaryPlan);
            if observe.records_snapshots() {
                // mbaa: allow(hot-path/vec-growth, pre-sized to the round budget at first-round setup below)
                configurations.push(RoundSnapshot::new(
                    // mbaa: allow(hot-path/allocation, Observe::Snapshots opts out of the zero-allocation guarantee)
                    states.iter().copied().zip(votes.iter().copied()).collect(),
                ));
            }

            // First round: now that the faulty set is known, freeze the
            // validity envelope and the initial diameter, and size the
            // report to the round budget so later records never reallocate.
            if validity_envelope.is_none() {
                received.refill(
                    votes
                        .iter()
                        .zip(&states)
                        .filter_map(|(v, s)| s.is_non_faulty().then_some(*v)),
                );
                let envelope = received
                    .range()
                    .expect("at least one process is non-faulty");
                validity_envelope = Some(envelope);
                let initial_diameter = received.diameter();
                prev_diameter = initial_diameter;
                if cfg.epsilon.covers_diameter(initial_diameter) {
                    reached = true;
                }
                report = Some(ConvergenceReport::with_capacity(
                    initial_diameter,
                    cfg.max_rounds,
                ));
                if reached {
                    break;
                }
            }

            // Send phase: rewrite the reused outboxes in place.
            observer.phase_start(Phase::Exchange);
            for (i, outbox) in outboxes.iter_mut().enumerate() {
                fill_outbox(cfg.model, outbox, ProcessId::new(i), &plan, &votes);
            }

            // Receive phase, into the reused slot matrix.
            network.exchange_into(round, &outboxes, &mut deliveries)?;
            observer.phase_end(Phase::Exchange);

            // Compute phase: every non-faulty process applies the voting
            // function; a faulty process' state is irrelevant (the agent
            // rewrites it at will). Under Buhrman's model the agent leaves
            // its host together with the outgoing message, so the host —
            // although it sent adversarial messages this round — executes
            // the receive and compute phases correctly and ends the round
            // with a freshly computed value.
            let compute_even_if_faulty = cfg.model.agents_move_with_messages();
            observer.phase_start(Phase::MsrApply);
            let mut min_multiset = usize::MAX;
            for i in 0..n {
                if states[i].is_non_faulty() || compute_even_if_faulty {
                    received.refill(deliveries.delivered_to(ProcessId::new(i)));
                    if telemetry {
                        min_multiset = min_multiset.min(received.len());
                    }
                    if let Some(next) = function.apply(&received) {
                        votes[i] = next;
                    }
                }
            }
            observer.phase_end(Phase::MsrApply);

            observer.phase_start(Phase::Record);
            rounds_executed = round_idx + 1;
            let diameter = non_faulty_diameter(&votes, &states);
            let report_ref = report.as_mut().expect("report initialised in first round");
            report_ref.record_round(diameter);
            reached = cfg.epsilon.covers_diameter(diameter);
            if telemetry {
                let stats = network.stats();
                let width = if min_multiset == usize::MAX {
                    0
                } else {
                    function.reduced_width(min_multiset)
                };
                observer.on_round(&RoundEvent {
                    seed: cfg.seed,
                    round: round_idx as u64,
                    diameter,
                    contraction: if prev_diameter > 0.0 {
                        diameter / prev_diameter
                    } else {
                        1.0
                    },
                    faulty: plan.faulty.len() as u32,
                    cured: plan.cured.len() as u32,
                    corrupted: corrupted_this_round,
                    delivered: stats.messages_delivered - prev_stats.messages_delivered,
                    omissions: stats.omissions - prev_stats.omissions,
                    link_omissions: stats.link_omissions - prev_stats.link_omissions,
                    msr_width: width as u32,
                });
                prev_stats = stats;
                prev_diameter = diameter;
                corruptions_total += u64::from(corrupted_this_round);
            }
            observer.phase_end(Phase::Record);
        }

        // A configuration with zero rounds (max_rounds reached without any
        // iteration is impossible because max_rounds >= 1, but inputs may
        // already agree before the adversary ever placed an agent).
        let validity_envelope = validity_envelope.unwrap_or_else(|| {
            Interval::hull(votes.iter().copied()).expect("at least one process")
        });
        let report = report.unwrap_or_else(|| {
            ConvergenceReport::new(
                Interval::hull(votes.iter().copied())
                    .map(|i| i.diameter())
                    .unwrap_or(0.0),
            )
        });

        // The trace leaves the network by move: cloning it would copy the
        // n×n-per-round observation records the run just paid to record
        // (and is pure waste when tracing was off).
        let (trace, network_stats) = network.into_parts();
        let outcome = MobileRunOutcome {
            reached_agreement: reached,
            rounds_executed,
            final_votes: votes,
            final_states: states,
            report,
            validity_envelope,
            epsilon: cfg.epsilon,
            configurations,
            trace,
            network_stats,
        };
        if telemetry {
            emit_run_events(observer, cfg.seed, &outcome, corruptions_total);
        }
        Ok(outcome)
    }
}

/// Emits the run-level telemetry for a finished run: a
/// [`ConvergenceEvent`] when ε-agreement was reached, then the
/// unconditional [`RunEndEvent`]. Shared by the scalar engine and the
/// per-lane collection of the seed-batched engine so both paths produce
/// bit-identical per-seed event streams.
pub(crate) fn emit_run_events<O: Observer>(
    observer: &mut O,
    seed: u64,
    outcome: &MobileRunOutcome,
    corruptions: u64,
) {
    if outcome.reached_agreement {
        observer.on_convergence(&ConvergenceEvent {
            seed,
            rounds: outcome.rounds_executed as u64,
            initial_diameter: outcome.report.initial_diameter(),
            final_diameter: outcome.report.final_diameter(),
        });
    }
    observer.on_run_end(&RunEndEvent {
        seed,
        reached_agreement: outcome.reached_agreement,
        validity: outcome.validity_holds(),
        rounds: outcome.rounds_executed as u64,
        initial_diameter: outcome.report.initial_diameter(),
        final_diameter: outcome.report.final_diameter(),
        mean_contraction: outcome.report.mean_contraction_factor(),
        messages_delivered: outcome.network_stats.messages_delivered,
        omissions: outcome.network_stats.omissions,
        link_omissions: outcome.network_stats.link_omissions,
        corruptions,
    });
}

/// The per-round scratch buffers of one run: allocated once, reused in
/// place by every round. Invariants: the buffers always cover the full
/// universe `n`; `plan` is overwritten by
/// [`MobileAdversary::begin_round_into`] (its outboxes recycle through the
/// adversary's pool); `outboxes[i]` always carries sender `i` into the
/// exchange; `deliveries` is fully overwritten by
/// [`SyncNetwork::exchange_into`]; `received` is refilled per process.
/// Shared between the scalar engine and the seed-batched engine in
/// [`crate::batch`] so both loops allocate identically.
pub(crate) struct RoundScratch {
    pub(crate) plan: RoundFaultPlan,
    pub(crate) outboxes: Vec<Outbox>,
    pub(crate) deliveries: DeliveryMatrix,
    pub(crate) received: ValueMultiset,
}

impl RoundScratch {
    pub(crate) fn new(n: usize) -> Self {
        RoundScratch {
            plan: RoundFaultPlan::empty(n),
            outboxes: (0..n)
                .map(|i| Outbox::silent(n, ProcessId::new(i)))
                .collect(),
            deliveries: DeliveryMatrix::new(n),
            received: ValueMultiset::with_capacity(n),
        }
    }
}

/// Rewrites the reused outbox of one process for the send phase, honouring
/// the model-specific behaviour of faulty and cured processes. In-place
/// counterpart of the historical per-round outbox construction: slot
/// contents are identical, nothing is allocated. Shared by the scalar and
/// the seed-batched round loops.
pub(crate) fn fill_outbox(
    model: MobileModel,
    outbox: &mut Outbox,
    p: ProcessId,
    plan: &RoundFaultPlan,
    votes: &[Value],
) {
    if plan.faulty.contains(p) {
        outbox.copy_from(
            plan.faulty_outboxes[p.index()]
                .as_ref()
                .expect("adversary provides an outbox for every faulty process"),
        );
        return;
    }
    if plan.cured.contains(p) {
        match model {
            // Aware of its state: stays silent for one round rather than
            // spreading a possibly corrupted value.
            MobileModel::Garay => outbox.fill_silent(),
            // Unaware: broadcasts its (possibly corrupted) state the same
            // way to everyone — a symmetric fault.
            MobileModel::Bonnet => outbox.fill_broadcast(votes[p.index()]),
            // Unaware, and the agent prepared its outgoing queue: flushes
            // the poisoned queue — an asymmetric fault.
            MobileModel::Sasaki => outbox.copy_from(
                plan.poisoned_outboxes[p.index()]
                    .as_ref()
                    .expect("Sasaki adversary provides a poisoned queue for every cured process"),
            ),
            // Agents move with the messages: there is never a cured
            // process during the send phase.
            MobileModel::Buhrman => {
                unreachable!("Buhrman's model has no cured senders")
            }
        }
        return;
    }
    outbox.fill_broadcast(votes[p.index()]);
}

/// The diameter of the non-faulty processes' votes, computed by a min/max
/// fold — no multiset materialization. Numerically identical to collecting
/// the non-faulty values and taking [`ValueMultiset::diameter`].
///
/// The fold runs eight independent accumulator pairs abreast (seeded with
/// the first non-faulty value, which is idempotent under min/max), so the
/// per-round reduction is not serialized on one compare chain. `Value`'s
/// min/max are total-order based, hence associative and commutative — the
/// chunked reduction picks exactly the values the sequential fold picks.
pub(crate) fn non_faulty_diameter(votes: &[Value], states: &[FaultState]) -> f64 {
    const LANES: usize = 8;
    let Some(seed) = votes
        .iter()
        .zip(states)
        .find_map(|(v, s)| s.is_non_faulty().then_some(*v))
    else {
        return 0.0;
    };
    let mut lo = [seed; LANES];
    let mut hi = [seed; LANES];
    for (chunk_v, chunk_s) in votes.chunks(LANES).zip(states.chunks(LANES)) {
        for (j, (v, s)) in chunk_v.iter().zip(chunk_s).enumerate() {
            if s.is_non_faulty() {
                lo[j] = lo[j].min(*v);
                hi[j] = hi[j].max(*v);
            }
        }
    }
    let lo = lo.into_iter().min().expect("LANES > 0");
    let hi = hi.into_iter().max().expect("LANES > 0");
    hi.get() - lo.get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbaa_adversary::{CorruptionStrategy, MobilityStrategy};
    use mbaa_msr::MedianVoting;

    fn inputs(n: usize) -> Vec<Value> {
        (0..n).map(|i| Value::new(i as f64 / n as f64)).collect()
    }

    fn base_config(model: MobileModel, n: usize, f: usize) -> ProtocolConfig {
        ProtocolConfig::builder(model, n, f)
            .epsilon(1e-4)
            .max_rounds(500)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn all_models_converge_above_their_bound() {
        for model in MobileModel::ALL {
            let f = 2;
            let n = model.required_processes(f);
            let config = base_config(model, n, f);
            let outcome = MobileEngine::new(config).run(&inputs(n)).unwrap();
            assert!(outcome.reached_agreement, "{model} did not converge");
            assert!(
                outcome.epsilon_agreement_holds(),
                "{model} diameter too large"
            );
            assert!(outcome.validity_holds(), "{model} violated validity");
        }
    }

    #[test]
    fn fault_free_run_converges_immediately() {
        let config = base_config(MobileModel::Buhrman, 5, 0);
        let outcome = MobileEngine::new(config).run(&inputs(5)).unwrap();
        assert!(outcome.reached_agreement);
        assert!(outcome.rounds_executed <= 2);
        assert!(outcome.validity_holds());
    }

    #[test]
    fn identical_inputs_terminate_without_any_round() {
        let config = base_config(MobileModel::Garay, 9, 2);
        let same = vec![Value::new(0.5); 9];
        let outcome = MobileEngine::new(config).run(&same).unwrap();
        assert!(outcome.reached_agreement);
        assert_eq!(outcome.rounds_executed, 0);
        assert_eq!(outcome.final_diameter(), 0.0);
    }

    #[test]
    fn wrong_input_count_is_rejected() {
        let config = base_config(MobileModel::Garay, 9, 2);
        let err = MobileEngine::new(config).run(&inputs(5)).unwrap_err();
        assert!(matches!(
            err,
            Error::WrongInputCount {
                provided: 5,
                expected: 9
            }
        ));
    }

    #[test]
    fn outcome_exposes_configurations_and_trace() {
        let config = base_config(MobileModel::Bonnet, 11, 2);
        let outcome = MobileEngine::new(config).run(&inputs(11)).unwrap();
        assert_eq!(outcome.configurations.len(), outcome.rounds_executed);
        assert_eq!(outcome.trace.len(), outcome.rounds_executed);
        // Every configuration has f faulty processes and at most f cured.
        for c in &outcome.configurations {
            assert_eq!(c.faulty_set().len(), 2);
            assert!(c.cured_set().len() <= 2);
        }
    }

    #[test]
    fn cured_processes_recover_after_one_round() {
        // Corollary 1: the cured set never exceeds f, i.e. cured processes
        // from older rounds have all recovered.
        let config = ProtocolConfig::builder(MobileModel::Sasaki, 13, 2)
            .epsilon(1e-6)
            .max_rounds(60)
            .mobility(MobilityStrategy::Random)
            .seed(3)
            .build()
            .unwrap();
        let outcome = MobileEngine::new(config).run(&inputs(13)).unwrap();
        for c in &outcome.configurations {
            assert!(c.cured_set().len() <= 2);
        }
    }

    #[test]
    fn diameter_never_expands_when_bound_holds() {
        for model in MobileModel::ALL {
            let f = 1;
            let n = model.required_processes(f) + 2;
            let config = ProtocolConfig::builder(model, n, f)
                .epsilon(1e-6)
                .max_rounds(200)
                .corruption(CorruptionStrategy::split_attack())
                .mobility(MobilityStrategy::TargetExtremes)
                .seed(5)
                .build()
                .unwrap();
            let outcome = MobileEngine::new(config).run(&inputs(n)).unwrap();
            assert!(
                outcome.report.is_monotonically_non_expanding(),
                "{model}: {:?}",
                outcome.report.diameters()
            );
        }
    }

    #[test]
    fn all_corruption_strategies_are_tolerated_above_bound() {
        let f = 2;
        for model in MobileModel::ALL {
            let n = model.required_processes(f);
            for corruption in CorruptionStrategy::all_representative() {
                let config = ProtocolConfig::builder(model, n, f)
                    .epsilon(1e-3)
                    .max_rounds(600)
                    .corruption(corruption)
                    .seed(17)
                    .build()
                    .unwrap();
                let outcome = MobileEngine::new(config).run(&inputs(n)).unwrap();
                assert!(
                    outcome.reached_agreement && outcome.validity_holds(),
                    "{model} with {corruption} failed (diameter {})",
                    outcome.final_diameter()
                );
            }
        }
    }

    #[test]
    fn partial_topology_runs_are_deterministic_and_structurally_masked() {
        let config = ProtocolConfig::builder(MobileModel::Garay, 9, 1)
            .epsilon(1e-3)
            .max_rounds(300)
            .seed(5)
            .topology(Topology::Ring { k: 2 })
            .build()
            .unwrap();
        let engine = MobileEngine::new(config);
        let a = engine.run(&inputs(9)).unwrap();
        let b = engine.run(&inputs(9)).unwrap();
        assert_eq!(a, b);
        assert!(a.rounds_executed > 0);
        // On a 9-ring with k = 2 every sender misses 4 non-neighbours, and
        // the trace records that as structure, not as faults.
        let obs = a.trace.get(0).unwrap().observation(ProcessId::new(0));
        assert_eq!(obs.unreachable_receivers().len(), 4);
    }

    #[test]
    fn churned_runs_are_deterministic_and_account_link_faults_separately() {
        use mbaa_net::{DisconnectionPolicy, LinkFaultPlan};
        let config = ProtocolConfig::builder(MobileModel::Garay, 9, 1)
            .epsilon(1e-3)
            .max_rounds(300)
            .seed(7)
            .topology_schedule(TopologySchedule::SeededChurn {
                base: Topology::Complete,
                flip_rate: 0.3,
            })
            .link_faults(LinkFaultPlan::new().omit_all(0.05))
            .build()
            .unwrap();
        assert_eq!(config.disconnection, DisconnectionPolicy::Record);
        let engine = MobileEngine::new(config);
        let a = engine.run(&inputs(9)).unwrap();
        let b = engine.run(&inputs(9)).unwrap();
        assert_eq!(a, b);
        assert!(a.rounds_executed > 0);
        // Structural drops and link losses never masquerade as adversary
        // omissions: the adversary here is Garay's, whose cured processes
        // do omit — but the link counters are tracked on their own.
        assert!(a.network_stats.unreachable > 0, "churn dropped no link");
        assert!(a.network_stats.link_omissions > 0, "p=0.05 lost nothing");
        assert_eq!(a.network_stats.link_delayed, 0);
        assert_eq!(a.network_stats.rounds as usize, a.rounds_executed);
    }

    #[test]
    fn reject_policy_surfaces_disconnected_rounds_as_typed_errors() {
        use mbaa_net::DisconnectionPolicy;
        let config = ProtocolConfig::builder(MobileModel::Garay, 9, 1)
            .epsilon(1e-9)
            .max_rounds(200)
            .seed(3)
            .topology_schedule(TopologySchedule::SeededChurn {
                base: Topology::Complete,
                flip_rate: 0.9,
            })
            .disconnection(DisconnectionPolicy::Reject)
            .build()
            .unwrap();
        let err = MobileEngine::new(config).run(&inputs(9)).unwrap_err();
        assert!(matches!(err, Error::DisconnectedRound { .. }));
    }

    #[test]
    fn static_complete_schedule_is_bit_identical_to_no_schedule() {
        let plain = base_config(MobileModel::Bonnet, 11, 2);
        let scheduled = ProtocolConfig::builder(MobileModel::Bonnet, 11, 2)
            .epsilon(1e-4)
            .max_rounds(500)
            .seed(11)
            .topology_schedule(TopologySchedule::Static(Topology::Complete))
            .build()
            .unwrap();
        let a = MobileEngine::new(plain).run(&inputs(11)).unwrap();
        let b = MobileEngine::new(scheduled).run(&inputs(11)).unwrap();
        // The configs differ (one carries the schedule) but every outcome
        // field is identical, trace and stats included.
        assert_eq!(a, b);
        assert!(!a.network_stats.has_link_faults());
    }

    #[test]
    fn deterministic_under_seed() {
        let config = base_config(MobileModel::Bonnet, 11, 2);
        let engine = MobileEngine::new(config);
        let a = engine.run(&inputs(11)).unwrap();
        let b = engine.run(&inputs(11)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn observe_levels_record_subsets_of_the_same_run() {
        use crate::Observe;
        for model in MobileModel::ALL {
            let n = model.required_processes(2);
            let run_at = |observe: Observe| {
                let config = ProtocolConfig::builder(model, n, 2)
                    .epsilon(1e-4)
                    .max_rounds(500)
                    .seed(11)
                    .observe(observe)
                    .build()
                    .unwrap();
                MobileEngine::new(config).run(&inputs(n)).unwrap()
            };
            let full = run_at(Observe::Full);
            let snapshots = run_at(Observe::Snapshots);
            let summary = run_at(Observe::Summary);

            // The computation is identical: every recorded field agrees.
            assert_eq!(full.configurations.len(), full.rounds_executed);
            assert_eq!(full.trace.len(), full.rounds_executed);
            assert_eq!(snapshots.configurations, full.configurations);
            assert!(snapshots.trace.is_empty());
            assert!(summary.configurations.is_empty() && summary.trace.is_empty());
            for other in [&snapshots, &summary] {
                assert_eq!(other.reached_agreement, full.reached_agreement, "{model}");
                assert_eq!(other.rounds_executed, full.rounds_executed, "{model}");
                assert_eq!(other.final_votes, full.final_votes, "{model}");
                assert_eq!(other.final_states, full.final_states, "{model}");
                assert_eq!(other.report, full.report, "{model}");
                assert_eq!(other.validity_envelope, full.validity_envelope, "{model}");
                assert_eq!(other.network_stats, full.network_stats, "{model}");
            }
        }
    }

    #[test]
    fn observe_summary_is_bit_identical_on_dynamic_networks_too() {
        use crate::Observe;
        use mbaa_net::LinkFaultPlan;
        let build = |observe: Observe| {
            ProtocolConfig::builder(MobileModel::Garay, 9, 1)
                .epsilon(1e-3)
                .max_rounds(300)
                .seed(7)
                .topology_schedule(TopologySchedule::SeededChurn {
                    base: Topology::Complete,
                    flip_rate: 0.3,
                })
                .link_faults(LinkFaultPlan::new().omit_all(0.05))
                .observe(observe)
                .build()
                .unwrap()
        };
        let full = MobileEngine::new(build(Observe::Full))
            .run(&inputs(9))
            .unwrap();
        let summary = MobileEngine::new(build(Observe::Summary))
            .run(&inputs(9))
            .unwrap();
        assert_eq!(summary.final_votes, full.final_votes);
        assert_eq!(summary.report, full.report);
        assert_eq!(summary.network_stats, full.network_stats);
        assert!(summary.trace.is_empty() && !full.trace.is_empty());
    }

    #[test]
    fn median_baseline_can_be_swapped_in() {
        let config = base_config(MobileModel::Buhrman, 7, 2);
        let engine = MobileEngine::new(config);
        let outcome = engine
            .run_with_function(&MedianVoting::new(), &inputs(7))
            .unwrap();
        // The median baseline also converges under Buhrman's model here;
        // what matters for this test is that the engine accepts it.
        assert!(outcome.rounds_executed > 0);
        assert_eq!(engine.config().n, 7);
    }
}
