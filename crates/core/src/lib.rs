//! Approximate Agreement under Mobile Byzantine Faults — the paper's
//! contribution, executable.
//!
//! This crate sits on top of the substrates ([`mbaa_net`], [`mbaa_msr`],
//! [`mbaa_adversary`], `mbaa_mixed`) and provides:
//!
//! * [`ProtocolConfig`] / [`MobileEngine`] — the round-based protocol engine
//!   that runs any [`VotingFunction`](mbaa_msr::VotingFunction) (in
//!   particular any MSR instance) under any of the four mobile Byzantine
//!   models, enforcing each model's cured-process semantics
//!   (Garay: aware and silent; Bonnet: unaware, symmetric; Sasaki: unaware,
//!   poisoned queue; Buhrman: agents move with messages).
//! * [`RoundSnapshot`] and the equivalence machinery of Definitions 5–10,
//!   used to compare a mobile computation with its static mixed-mode image.
//! * [`mapping`] — Table 1 as an executable classification: run instrumented
//!   rounds and observe which mixed-mode class the faulty and cured
//!   processes of each model exhibit.
//! * [`bounds`] — Table 2: the replica requirement `n_Mi` per model, plus an
//!   empirical threshold finder used by the Table 2 benchmark.
//! * [`lower_bounds`] — the indistinguishability constructions of
//!   Theorems 3–6 (executions E1/E2/E3), executable against any concrete
//!   voting function to exhibit the violation at `n = n_Mi − 1 … ≤ c·f`.
//!
//! # Quickstart
//!
//! ```
//! use mbaa_core::{MobileEngine, ProtocolConfig};
//! use mbaa_types::{MobileModel, Value};
//!
//! // 9 processes, 2 mobile agents, Garay's model (needs n > 4f = 8).
//! let config = ProtocolConfig::builder(MobileModel::Garay, 9, 2)
//!     .epsilon(1e-4)
//!     .seed(7)
//!     .build()?;
//!
//! let inputs: Vec<Value> = (0..9).map(|i| Value::new(i as f64 / 9.0)).collect();
//! let outcome = MobileEngine::new(config).run(&inputs)?;
//! assert!(outcome.reached_agreement);
//! assert!(outcome.validity_holds());
//! # Ok::<(), mbaa_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod bounds;
mod config;
mod engine;
pub mod lower_bounds;
pub mod mapping;
mod snapshot;

pub use batch::{shape_compatible, BatchEngine, BatchLane, PackedLane};
pub use config::{defaults, Observe, ProtocolConfig, ProtocolConfigBuilder};
pub use engine::{MobileEngine, MobileRunOutcome};
pub use snapshot::{ProcessTuple, RoundSnapshot};
