//! Replica requirements (Table 2) and the empirical threshold finder used by
//! the Table 2 benchmark.
//!
//! The paper's Table 2 states the number of processes each model needs to
//! tolerate `f` mobile Byzantine agents:
//!
//! | model | requirement |
//! |---|---|
//! | M1 (Garay)   | `n > 4f` |
//! | M2 (Bonnet)  | `n > 5f` |
//! | M3 (Sasaki)  | `n > 6f` |
//! | M4 (Buhrman) | `n > 3f` |
//!
//! [`table2`] produces those rows. [`empirical_threshold`] complements them
//! experimentally: it sweeps `n` upwards and reports the smallest `n` at
//! which every seeded adversarial run reaches ε-agreement with validity.
//! Because a concrete adversary is not necessarily optimal, the empirical
//! threshold is a *lower estimate* of the true requirement; the tightness of
//! the bound itself is demonstrated by the indistinguishability
//! constructions in [`crate::lower_bounds`].

use serde::{Deserialize, Serialize};

use mbaa_adversary::{CorruptionStrategy, MobilityStrategy};
use mbaa_types::{MobileModel, Result, Value};

use crate::{MobileEngine, ProtocolConfig};

/// One row of Table 2: the replica requirement of one model for a given `f`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaRequirement {
    /// The mobile Byzantine model.
    pub model: MobileModel,
    /// The number of agents tolerated.
    pub f: usize,
    /// The bound `c·f` that `n` must strictly exceed.
    pub bound: usize,
    /// The smallest admissible number of processes, `c·f + 1`.
    pub required: usize,
}

/// Produces Table 2 for the given agent counts.
#[must_use]
pub fn table2(agent_counts: &[usize]) -> Vec<ReplicaRequirement> {
    let mut rows = Vec::with_capacity(agent_counts.len() * MobileModel::ALL.len());
    for &model in &MobileModel::ALL {
        for &f in agent_counts {
            rows.push(ReplicaRequirement {
                model,
                f,
                bound: model.impossibility_threshold(f),
                required: model.required_processes(f),
            });
        }
    }
    rows
}

/// Parameters of an empirical threshold search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdSearch {
    /// The model under test.
    pub model: MobileModel,
    /// The number of agents.
    pub f: usize,
    /// The adversary seeds every candidate `n` must survive.
    pub seeds: Vec<u64>,
    /// The agreement tolerance.
    pub epsilon: f64,
    /// The round budget per run.
    pub max_rounds: usize,
    /// The corruption strategy of the adversary.
    pub corruption: CorruptionStrategy,
    /// The mobility strategy of the adversary.
    pub mobility: MobilityStrategy,
}

impl ThresholdSearch {
    /// A search with the workspace's default worst-case adversary
    /// (split corruption + extreme-targeting mobility) and 10 seeds.
    #[must_use]
    pub fn worst_case(model: MobileModel, f: usize) -> Self {
        ThresholdSearch {
            model,
            f,
            seeds: (0..10).collect(),
            epsilon: 1e-3,
            max_rounds: 400,
            corruption: CorruptionStrategy::split_attack(),
            mobility: MobilityStrategy::TargetExtremes,
        }
    }
}

/// The result of an empirical threshold search for one (model, f) pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdResult {
    /// The model under test.
    pub model: MobileModel,
    /// The number of agents.
    pub f: usize,
    /// The theoretical requirement from Table 2.
    pub theoretical: usize,
    /// The smallest `n` from which every tested size up to the end of the
    /// sweep had all seeded runs succeed. (Isolated successes at very small
    /// `n`, where almost every process is faulty and agreement is vacuous,
    /// do not count.)
    pub empirical: usize,
    /// For each tested `n` (starting at `f + 1`), how many of the seeded
    /// runs reached ε-agreement with validity.
    pub successes_per_n: Vec<(usize, usize)>,
}

impl ThresholdResult {
    /// Returns `true` when the theoretical requirement is sufficient in the
    /// experiment, i.e. every run at `n = theoretical` succeeded.
    #[must_use]
    pub fn theoretical_is_sufficient(&self) -> bool {
        self.empirical <= self.theoretical
    }
}

/// Runs a single adversarial execution and reports whether it satisfied both
/// ε-agreement and validity.
fn run_succeeds(
    model: MobileModel,
    n: usize,
    f: usize,
    seed: u64,
    search: &ThresholdSearch,
) -> Result<bool> {
    let config = ProtocolConfig::builder(model, n, f)
        .epsilon(search.epsilon)
        .max_rounds(search.max_rounds)
        .corruption(search.corruption)
        .mobility(search.mobility)
        .seed(seed)
        .allow_bound_violation()
        .build()?;
    let inputs: Vec<Value> = (0..n).map(|i| Value::new(i as f64 / n as f64)).collect();
    let outcome = MobileEngine::new(config).run(&inputs)?;
    Ok(outcome.reached_agreement && outcome.validity_holds())
}

/// Sweeps `n` from `f + 1` up to `theoretical + margin` and reports, for each
/// `n`, how many of the seeded runs succeeded, together with the empirical
/// threshold: the smallest `n` such that every tested size `n' >= n` had all
/// seeded runs succeed.
///
/// # Errors
///
/// Propagates configuration or execution errors from the engine.
pub fn empirical_threshold(search: &ThresholdSearch, margin: usize) -> Result<ThresholdResult> {
    let theoretical = search.model.required_processes(search.f);
    let mut successes_per_n = Vec::new();

    for n in (search.f + 1)..=(theoretical + margin) {
        let mut successes = 0;
        for &seed in &search.seeds {
            if run_succeeds(search.model, n, search.f, seed, search)? {
                successes += 1;
            }
        }
        successes_per_n.push((n, successes));
    }

    // Scan downwards from the top of the sweep: the threshold is the first
    // point below which some size fails.
    let mut empirical = theoretical + margin + 1;
    for &(n, successes) in successes_per_n.iter().rev() {
        if successes == search.seeds.len() {
            empirical = n;
        } else {
            break;
        }
    }

    Ok(ThresholdResult {
        model: search.model,
        f: search.f,
        theoretical,
        empirical,
        successes_per_n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_the_paper() {
        let rows = table2(&[1, 2, 3]);
        assert_eq!(rows.len(), 12);
        let find = |model, f| {
            rows.iter()
                .find(|r| r.model == model && r.f == f)
                .copied()
                .unwrap()
        };
        assert_eq!(find(MobileModel::Garay, 2).required, 9);
        assert_eq!(find(MobileModel::Bonnet, 2).required, 11);
        assert_eq!(find(MobileModel::Sasaki, 2).required, 13);
        assert_eq!(find(MobileModel::Buhrman, 2).required, 7);
        assert_eq!(find(MobileModel::Garay, 3).bound, 12);
    }

    #[test]
    fn threshold_search_defaults() {
        let s = ThresholdSearch::worst_case(MobileModel::Garay, 1);
        assert_eq!(s.seeds.len(), 10);
        assert_eq!(s.mobility, MobilityStrategy::TargetExtremes);
    }

    #[test]
    fn empirical_threshold_confirms_sufficiency_of_table_2() {
        // Small search (f = 1, few seeds) to keep the test fast; the full
        // sweep lives in the table2_replicas benchmark.
        for model in MobileModel::ALL {
            let search = ThresholdSearch {
                seeds: (0..3).collect(),
                epsilon: 1e-3,
                max_rounds: 200,
                ..ThresholdSearch::worst_case(model, 1)
            };
            let result = empirical_threshold(&search, 1).unwrap();
            assert!(
                result.theoretical_is_sufficient(),
                "{model}: empirical {} > theoretical {}",
                result.empirical,
                result.theoretical
            );
            // The sweep covered n = f+1 ..= theoretical + 1.
            assert_eq!(
                result.successes_per_n.len(),
                result.theoretical + 1 - (search.f + 1) + 1
            );
            // At the theoretical requirement every seed succeeded.
            let at_bound = result
                .successes_per_n
                .iter()
                .find(|(n, _)| *n == result.theoretical)
                .unwrap();
            assert_eq!(at_bound.1, search.seeds.len());
        }
    }

    #[test]
    fn starved_configurations_fail() {
        // Sasaki with f = 1 maps to τ = 2, so the MSR function needs at
        // least 5 delivered values; at n = 4 the reduction empties every
        // multiset, votes never move, and the run cannot reach agreement.
        // Exercises the allow_bound_violation path below the bound.
        let search = ThresholdSearch {
            seeds: vec![0],
            epsilon: 1e-3,
            max_rounds: 50,
            ..ThresholdSearch::worst_case(MobileModel::Sasaki, 1)
        };
        let ok = run_succeeds(MobileModel::Sasaki, 4, 1, 0, &search).unwrap();
        assert!(!ok);
    }
}
