//! Batch and sweep execution for [`Scenario`]s: parallel seed fan-out,
//! seed-keyed aggregation, and the experiment grids the paper's figures are
//! built from.
//!
//! Runs are fully seeded and independent, so the [`Runner`] fans them out
//! on the work-stealing `rayon` pool and reassembles the outcomes sorted by
//! seed — the result is deterministic and independent of thread scheduling,
//! steal order, worker count, and the order seeds were supplied in.
//! [`Sweep::run`] flattens all of its `(point, seed)` pairs into **one**
//! global work pool under a single concurrency budget, so cheap points
//! drain while a near-threshold point is still converging. For very large
//! seed batches, [`Runner::stream`] / [`Sweep::stream`] fold each completed
//! run into its [`RunSummary`] on the worker instead of materializing full
//! trajectories.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use rayon::prelude::*;

use mbaa_adversary::{CorruptionStrategy, MobilityStrategy};
use mbaa_core::{defaults, MobileRunOutcome};
use mbaa_mixed::{FaultAssignment, StaticBehavior, StaticSimulator};
use mbaa_obs::MetricsRegistry;
use mbaa_sim::{ExperimentResult, RunSummary};
use mbaa_types::{Epsilon, Error, MobileModel, Result};

use crate::Scenario;

/// Runs `op` with an explicit worker budget installed, or on the ambient
/// pool when none was requested.
fn with_pool<R>(workers: Option<usize>, op: impl FnOnce() -> R) -> R {
    match workers {
        Some(width) => rayon::ThreadPoolBuilder::new()
            .num_threads(width)
            .build()
            .expect("the vendored pool builder cannot fail")
            .install(op),
        None => op(),
    }
}

/// The single seed-batch normalization every execution path shares: sorted
/// ascending, duplicates removed. [`Runner`], [`Sweep`], and
/// [`adversary_ablation`] all describe their runs through this, so the
/// flattened pools and the per-point batches always agree on which runs
/// exist.
fn normalize_seeds(mut seeds: Vec<u64>) -> Vec<u64> {
    seeds.sort_unstable();
    seeds.dedup();
    seeds
}

/// Executes one scenario over a batch of seeds, in parallel.
///
/// Produced by [`Scenario::batch`]; consumed by [`Runner::run`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Runner {
    scenario: Scenario,
    seeds: Vec<u64>,
    workers: Option<usize>,
}

impl Runner {
    pub(crate) fn new<I: IntoIterator<Item = u64>>(scenario: Scenario, seeds: I) -> Self {
        Runner {
            scenario,
            seeds: seeds.into_iter().collect(),
            workers: None,
        }
    }

    /// Caps the worker threads this runner fans out on (the default is the
    /// machine's available parallelism). Purely a throughput knob: results
    /// are bit-identical for every width, including `1`.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// The scenario this runner executes.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The seeds this runner will execute (as supplied, duplicates and
    /// all; [`run`](Runner::run) sorts and deduplicates).
    #[must_use]
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Runs every seed in parallel and aggregates the full outcomes into a
    /// [`BatchOutcome`], sorted by seed. Supplying the same seeds in any
    /// order produces an identical result.
    ///
    /// # Errors
    ///
    /// Returns the error of the smallest failing seed (configuration errors
    /// surface like this deterministically; engine errors cannot occur for
    /// workload-generated inputs).
    pub fn run(&self) -> Result<BatchOutcome> {
        let seeds = self.sorted_seeds();
        let scenario = &self.scenario;
        let results: Vec<(u64, Result<MobileRunOutcome>)> = with_pool(self.workers, || {
            seeds
                .into_par_iter()
                .map(|seed| (seed, scenario.run(seed)))
                .collect()
        });
        let mut runs = Vec::with_capacity(results.len());
        for (seed, outcome) in results {
            runs.push(SeededRun {
                seed,
                outcome: outcome?,
            });
        }
        Ok(BatchOutcome {
            scenario: self.scenario.clone(),
            runs,
        })
    }

    /// Runs the batch through the lowered [`ExperimentConfig`]
    /// (summary-only) path of `mbaa_sim` — cheaper than [`Runner::run`]
    /// when the full per-round outcomes are not needed. Seeds are sorted
    /// and deduplicated exactly as in [`Runner::run`], so the two paths
    /// always describe the same runs.
    ///
    /// # Errors
    ///
    /// Propagates configuration and engine errors.
    ///
    /// [`ExperimentConfig`]: mbaa_sim::ExperimentConfig
    pub fn summarize(&self) -> Result<ExperimentResult> {
        with_pool(self.workers, || {
            mbaa_sim::run_experiment(&self.scenario.to_experiment(self.sorted_seeds()))
        })
    }

    /// Streams the batch: every seed still runs in parallel, but each
    /// completed run is folded into its [`RunSummary`] *on the worker* and
    /// the full trajectory (trace + per-round snapshots) is dropped
    /// immediately, so memory stays flat even for very large seed batches.
    /// The result equals [`Runner::run`]`()?.to_experiment_result()` (and
    /// [`Runner::summarize`]) bit for bit, for every worker count.
    ///
    /// # Example
    ///
    /// ```
    /// use mbaa::prelude::*;
    ///
    /// let scenario = Scenario::at_bound(MobileModel::Buhrman, 2);
    /// // A large seed batch without holding one trajectory per seed.
    /// let summary = scenario.batch(0..128).stream()?;
    /// assert_eq!(summary.runs.len(), 128);
    /// assert!(summary.success_rate() > 0.99);
    /// # Ok::<(), mbaa::Error>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates configuration and engine errors, deterministically (the
    /// smallest failing seed wins).
    pub fn stream(&self) -> Result<ExperimentResult> {
        self.stream_with(|_| {})
    }

    /// Like [`Runner::stream`], but also hands every completed
    /// [`RunSummary`] to `on_run` as it finishes — in completion order, on
    /// the worker that produced it — for live progress reporting or online
    /// aggregation. `on_run` is never invoked for a failing seed.
    ///
    /// # Errors
    ///
    /// Propagates configuration and engine errors, deterministically.
    pub fn stream_with<F: Fn(&RunSummary) + Sync>(&self, on_run: F) -> Result<ExperimentResult> {
        with_pool(self.workers, || {
            mbaa_sim::run_experiment_with(&self.scenario.to_experiment(self.sorted_seeds()), on_run)
        })
    }

    /// Like [`Runner::stream`], but also folds every run's telemetry into a
    /// [`MetricsRegistry`] merged across the workers. Because the merge is
    /// elementwise counter addition — commutative and associative — the
    /// registry is bit-identical for every worker count and completion
    /// order, and the summaries equal [`Runner::stream`] exactly.
    ///
    /// # Errors
    ///
    /// Propagates configuration and engine errors, deterministically.
    pub fn stream_metrics(&self) -> Result<(ExperimentResult, MetricsRegistry)> {
        with_pool(self.workers, || {
            mbaa_sim::run_experiment_metrics(
                &self.scenario.to_experiment(self.sorted_seeds()),
                |_| {},
            )
        })
    }

    fn sorted_seeds(&self) -> Vec<u64> {
        normalize_seeds(self.seeds.clone())
    }
}

/// One seeded run within a batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeededRun {
    /// The seed that drove the adversary and the workload.
    pub seed: u64,
    /// The full outcome of the run.
    pub outcome: MobileRunOutcome,
}

/// The aggregated outcome of one scenario over a seed batch: the full
/// [`MobileRunOutcome`] of every seed, sorted by seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchOutcome {
    /// The scenario that produced this batch.
    pub scenario: Scenario,
    /// One full outcome per distinct seed, in ascending seed order.
    pub runs: Vec<SeededRun>,
}

impl BatchOutcome {
    /// Number of runs in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// `true` when the batch holds no runs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The outcome of one seed, if it is part of the batch.
    #[must_use]
    pub fn get(&self, seed: u64) -> Option<&MobileRunOutcome> {
        self.runs
            .binary_search_by_key(&seed, |r| r.seed)
            .ok()
            .map(|i| &self.runs[i].outcome)
    }

    /// Iterates over `(seed, outcome)` pairs in ascending seed order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &MobileRunOutcome)> + '_ {
        self.runs.iter().map(|r| (r.seed, &r.outcome))
    }

    /// Fraction of runs that reached ε-agreement *and* preserved validity.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        let ok = self
            .runs
            .iter()
            .filter(|r| r.outcome.reached_agreement && r.outcome.validity_holds())
            .count();
        ok as f64 / self.runs.len() as f64
    }

    /// `true` when every run reached ε-agreement with validity.
    #[must_use]
    pub fn all_succeeded(&self) -> bool {
        !self.runs.is_empty()
            && self
                .runs
                .iter()
                .all(|r| r.outcome.reached_agreement && r.outcome.validity_holds())
    }

    /// Mean rounds-to-agreement over the successful runs, or `None` when no
    /// run succeeded.
    #[must_use]
    pub fn mean_rounds(&self) -> Option<f64> {
        let rounds: Vec<f64> = self
            .runs
            .iter()
            .filter(|r| r.outcome.reached_agreement)
            .map(|r| r.outcome.rounds_executed as f64)
            .collect();
        if rounds.is_empty() {
            None
        } else {
            Some(rounds.iter().sum::<f64>() / rounds.len() as f64)
        }
    }

    /// Mean per-round contraction factor over the runs where one was
    /// measurable.
    #[must_use]
    pub fn mean_contraction(&self) -> Option<f64> {
        let factors: Vec<f64> = self
            .runs
            .iter()
            .filter_map(|r| r.outcome.report.mean_contraction_factor())
            .collect();
        if factors.is_empty() {
            None
        } else {
            Some(factors.iter().sum::<f64>() / factors.len() as f64)
        }
    }

    /// Condenses the batch into the summary-level [`ExperimentResult`] the
    /// report tables consume.
    #[must_use]
    pub fn to_experiment_result(&self) -> ExperimentResult {
        ExperimentResult {
            config: self
                .scenario
                .to_experiment(self.runs.iter().map(|r| r.seed)),
            runs: self
                .runs
                .iter()
                .map(|r| RunSummary::from_outcome(r.seed, &r.outcome))
                .collect(),
        }
    }
}

/// A family of scenarios differing in one axis (system size, agent count,
/// or anything produced by [`Sweep::over`]), evaluated point by point over
/// a common seed batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sweep {
    points: Vec<Scenario>,
    seeds: Vec<u64>,
    workers: Option<usize>,
}

impl Sweep {
    pub(crate) fn new(points: Vec<Scenario>) -> Self {
        // The historical experiment default: ten seeds per point.
        Sweep {
            points,
            seeds: (0..10).collect(),
            workers: None,
        }
    }

    /// A sweep over an explicit list of scenario points.
    #[must_use]
    pub fn over<I: IntoIterator<Item = Scenario>>(points: I) -> Self {
        Sweep::new(points.into_iter().collect())
    }

    /// Replaces the seed batch evaluated at every point (default `0..10`).
    #[must_use]
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Caps the worker threads of the sweep's global work pool (the default
    /// is the machine's available parallelism) — the sweep's single
    /// concurrency budget. Purely a throughput knob: results are
    /// bit-identical for every width, including `1`.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// The scenario points of the sweep.
    #[must_use]
    pub fn points(&self) -> &[Scenario] {
        &self.points
    }

    /// The seed batch, sorted and deduplicated exactly as
    /// [`Runner::run`] normalizes it, so flattened execution and the
    /// per-point [`Runner`] path always describe the same runs.
    fn normalized_seeds(&self) -> Vec<u64> {
        normalize_seeds(self.seeds.clone())
    }

    /// Every `(point index, seed)` pair of the sweep, point-major — the
    /// flattened global work pool [`run`](Sweep::run) and
    /// [`stream`](Sweep::stream) schedule over.
    fn flattened_tasks(&self, seeds: &[u64]) -> Vec<(usize, u64)> {
        (0..self.points.len())
            .flat_map(|point| seeds.iter().map(move |&seed| (point, seed)))
            .collect()
    }

    /// Runs the whole sweep through **one** global work-stealing pool: all
    /// `(point, seed)` pairs are flattened into a single task list and
    /// workers steal across point boundaries, so a near-threshold point
    /// that needs many rounds no longer serializes the points behind it.
    /// Outcomes are regrouped per point afterwards; every
    /// [`SweepPoint::outcome`] is bit-identical to running
    /// `point.batch(seeds).run()` on its own, for every worker count and
    /// steal order.
    ///
    /// # Example
    ///
    /// ```
    /// use mbaa::prelude::*;
    ///
    /// // Three system sizes × four seeds = twelve runs in one pool.
    /// let points = Scenario::at_bound(MobileModel::Buhrman, 2)
    ///     .sweep_n(2)
    ///     .seeds(0..4)
    ///     .run()?;
    /// assert_eq!(points.len(), 3);
    /// assert!(points.iter().all(|p| p.outcome.all_succeeded()));
    /// # Ok::<(), mbaa::Error>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the first failing `(point, seed)` pair's error in
    /// point-major, seed-minor order — the same error the old sequential
    /// point loop surfaced.
    pub fn run(&self) -> Result<Vec<SweepPoint>> {
        let seeds = self.normalized_seeds();
        let tasks = self.flattened_tasks(&seeds);
        let results: Vec<Result<MobileRunOutcome>> = with_pool(self.workers, || {
            tasks
                .into_par_iter()
                .map(|(point, seed)| self.points[point].run(seed))
                .collect()
        });
        let mut results = results.into_iter();
        self.points
            .iter()
            .map(|scenario| {
                let runs = seeds
                    .iter()
                    .map(|&seed| {
                        Ok(SeededRun {
                            seed,
                            outcome: results.next().expect("one result per task")?,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(SweepPoint {
                    scenario: scenario.clone(),
                    outcome: BatchOutcome {
                        scenario: scenario.clone(),
                        runs,
                    },
                })
            })
            .collect()
    }

    /// Streaming variant of [`Sweep::run`]: the same flattened global pool,
    /// but the work units are seed-batch *chunks* that advance in lockstep
    /// on the seed-batched engine, and each completed run is folded into
    /// its [`RunSummary`] on the worker with the trajectory dropped
    /// immediately — so even a sweep of many large seed batches keeps
    /// memory flat. Each point's [`ExperimentResult`] equals
    /// `point.batch(seeds).run()?.to_experiment_result()` bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates the first failing `(point, seed)` pair's error in
    /// point-major, seed-minor order.
    pub fn stream(&self) -> Result<Vec<SweepSummary>> {
        // No callback, no completion tracking: the plain streaming path
        // pays nothing for the progress machinery.
        self.stream_impl(None::<fn(&SweepSummary)>, None)
    }

    /// Like [`Sweep::stream`], but also hands every *completed point* to
    /// `on_point` as its last seed finishes — on the worker that completed
    /// it, in completion order — for live progress reporting over long
    /// sweeps. The [`SweepSummary`] passed to the callback is bit-identical
    /// to the corresponding entry of the returned vector; a point whose
    /// runs fail is never reported.
    ///
    /// # Example
    ///
    /// ```
    /// use mbaa::prelude::*;
    /// use std::sync::atomic::{AtomicUsize, Ordering};
    ///
    /// let done = AtomicUsize::new(0);
    /// let points = Scenario::at_bound(MobileModel::Buhrman, 2)
    ///     .sweep_n(2)
    ///     .seeds(0..4)
    ///     .stream_with(|point| {
    ///         let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
    ///         eprintln!("{finished} points done, n={}", point.scenario.n);
    ///     })?;
    /// assert_eq!(done.load(Ordering::Relaxed), points.len());
    /// # Ok::<(), mbaa::Error>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the first failing `(point, seed)` pair's error in
    /// point-major, seed-minor order.
    pub fn stream_with<F: Fn(&SweepSummary) + Sync>(
        &self,
        on_point: F,
    ) -> Result<Vec<SweepSummary>> {
        self.stream_impl(Some(on_point), None)
    }

    /// Like [`Sweep::stream`], but also folds the telemetry of every
    /// `(point, seed)` run into **one** [`MetricsRegistry`] merged across
    /// the whole sweep. The merge is elementwise counter addition —
    /// commutative and associative — so the registry is bit-identical for
    /// every worker count, steal order, and chunk completion order, and the
    /// summaries equal [`Sweep::stream`] exactly.
    ///
    /// # Errors
    ///
    /// Propagates the first failing `(point, seed)` pair's error in
    /// point-major, seed-minor order.
    pub fn stream_metrics(&self) -> Result<(Vec<SweepSummary>, MetricsRegistry)> {
        let merged = Mutex::new(MetricsRegistry::new());
        let summaries = self.stream_impl(None::<fn(&SweepSummary)>, Some(&merged))?;
        let metrics = merged.into_inner().expect("no panics hold the lock");
        Ok((summaries, metrics))
    }

    /// Shared implementation of [`Sweep::stream`] / [`Sweep::stream_with`]:
    /// the per-point completion tracking only exists when a callback does.
    ///
    /// Every `(point, seed)` pair of the sweep lowers into one flat
    /// point-major lane list handed to
    /// `mbaa_sim::run_packed_experiments`, which packs consecutive
    /// shape-compatible lanes — **across point boundaries** — into
    /// seed-batched engine launches of up to [`mbaa_sim::BATCH_WIDTH`]
    /// lanes. A sweep of many small points therefore no longer pays one
    /// under-full batch per point: lanes from the next compatible point
    /// top up the previous point's tail. Per-seed summaries are
    /// bit-identical to the per-point path for every worker count and
    /// pack boundary.
    fn stream_impl<F: Fn(&SweepSummary) + Sync>(
        &self,
        on_point: Option<F>,
        metrics: Option<&Mutex<MetricsRegistry>>,
    ) -> Result<Vec<SweepSummary>> {
        let seeds = self.normalized_seeds();
        // Per-point completion tracking: every finished seed stashes its
        // summary in the point's slot vector and decrements the pending
        // counter; whoever drops it to zero owns the completion and reports
        // the point.
        let tracking = on_point.as_ref().map(|_| {
            let pending: Vec<AtomicUsize> = self
                .points
                .iter()
                .map(|_| AtomicUsize::new(seeds.len()))
                .collect();
            let partial: Vec<Mutex<Vec<Option<RunSummary>>>> = self
                .points
                .iter()
                .map(|_| Mutex::new(vec![None; seeds.len()]))
                .collect();
            (pending, partial)
        });
        // Streaming keeps only summaries, and summaries are bit-identical
        // across observability levels: the sim executor runs every lane at
        // `Observe::Summary`, where the batched engine's rounds stay
        // allocation-free and no trace is ever materialized.
        let configs: Vec<mbaa_sim::ExperimentConfig> = self
            .points
            .iter()
            .map(|scenario| scenario.to_experiment(seeds.iter().copied()))
            .collect();
        let on_run = |point: usize, summary: &RunSummary| {
            if let (Some(on_point), Some((pending, partial))) =
                (on_point.as_ref(), tracking.as_ref())
            {
                let slot = seeds
                    .binary_search(&summary.seed)
                    .expect("seed comes from the normalized batch");
                partial[point].lock().expect("no panics hold the lock")[slot] = Some(*summary);
                if pending[point].fetch_sub(1, Ordering::AcqRel) == 1 {
                    let runs: Vec<RunSummary> = partial[point]
                        .lock()
                        .expect("no panics hold the lock")
                        .iter()
                        .map(|s| s.expect("every seed of a completed point is stashed"))
                        .collect();
                    on_point(&SweepSummary {
                        scenario: self.points[point].clone(),
                        result: ExperimentResult {
                            config: self.points[point].to_experiment(seeds.iter().copied()),
                            runs,
                        },
                    });
                }
            }
        };
        let results: Vec<Result<ExperimentResult>> = with_pool(self.workers, || {
            // The metrics sink merges the pool's registry as it completes;
            // counter addition commutes, so the merged registry is
            // independent of completion order.
            match metrics {
                Some(sink) => {
                    let (results, local) =
                        mbaa_sim::run_packed_experiments_metrics(&configs, on_run);
                    sink.lock().expect("no panics hold the lock").merge(&local);
                    results
                }
                None => mbaa_sim::run_packed_experiments(&configs, on_run),
            }
        });
        // Each point's result carries its first failing seed's error (in
        // seed order), and results are consumed point-major — the same
        // deterministic point-major / seed-minor error the per-seed pool
        // produced.
        let summaries: Result<Vec<SweepSummary>> = self
            .points
            .iter()
            .zip(results)
            .map(|(scenario, result)| {
                Ok(SweepSummary {
                    scenario: scenario.clone(),
                    result: result?,
                })
            })
            .collect();
        let summaries = summaries?;
        // With an empty seed batch no task ever fires, but every point is
        // trivially complete: report them in order so the callback still
        // sees one invocation per completed point.
        if seeds.is_empty() {
            if let Some(on_point) = on_point.as_ref() {
                for summary in &summaries {
                    on_point(summary);
                }
            }
        }
        Ok(summaries)
    }
}

/// Runs several scenario seed-segments as **one** cross-point packed pool
/// and returns one summary-level [`ExperimentResult`] per segment, aligned
/// with the input. Segments whose lowered configurations share a batch
/// shape (same `n`, `f`, model) ride in shared seed-batched engine
/// launches, so a segment too small to fill a batch is topped up by its
/// neighbour instead of paying an under-full launch — the execution path
/// of the CLI's resumable checkpoint chunks, which slice a sweep grid into
/// runs of consecutive `(point, seed)` pairs.
///
/// Seeds are normalized (sorted, deduplicated) per segment exactly as
/// [`Runner::run`] normalizes, and each segment's result is bit-identical
/// to `scenario.batch(seeds).stream()` on its own, for every worker count.
/// A failing segment carries its first failing seed's error (in seed
/// order) without disturbing its neighbours.
pub fn stream_segments(
    segments: &[(Scenario, Vec<u64>)],
    workers: Option<usize>,
) -> Vec<Result<ExperimentResult>> {
    stream_segments_impl(segments, workers, None)
}

/// [`stream_segments`] with every run's telemetry folded into one
/// [`MetricsRegistry`] — merged by elementwise counter addition, so the
/// registry is bit-identical for every worker count and completion order.
pub fn stream_segments_metrics(
    segments: &[(Scenario, Vec<u64>)],
    workers: Option<usize>,
) -> (Vec<Result<ExperimentResult>>, MetricsRegistry) {
    let mut metrics = MetricsRegistry::new();
    let results = stream_segments_impl(segments, workers, Some(&mut metrics));
    (results, metrics)
}

/// Shared implementation of [`stream_segments`] /
/// [`stream_segments_metrics`]: lower every segment, hand the whole list
/// to the sim layer's cross-point packed executor under the requested
/// worker budget.
fn stream_segments_impl(
    segments: &[(Scenario, Vec<u64>)],
    workers: Option<usize>,
    metrics: Option<&mut MetricsRegistry>,
) -> Vec<Result<ExperimentResult>> {
    let configs: Vec<mbaa_sim::ExperimentConfig> = segments
        .iter()
        .map(|(scenario, seeds)| scenario.to_experiment(normalize_seeds(seeds.clone())))
        .collect();
    with_pool(workers, || match metrics {
        Some(sink) => {
            let (results, local) = mbaa_sim::run_packed_experiments_metrics(&configs, |_, _| {});
            sink.merge(&local);
            results
        }
        None => mbaa_sim::run_packed_experiments(&configs, |_, _| {}),
    })
}

/// One evaluated point of a [`Sweep`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The scenario of this point (its `n`, `f`, … are the axis values).
    pub scenario: Scenario,
    /// The aggregated batch outcome at this point.
    pub outcome: BatchOutcome,
}

/// One summary-only point of a streamed [`Sweep`] (see [`Sweep::stream`]):
/// the per-seed [`RunSummary`]s without the trajectories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// The scenario of this point (its `n`, `f`, … are the axis values).
    pub scenario: Scenario,
    /// The aggregated summary-level result at this point.
    pub result: ExperimentResult,
}

/// One cell of the adversary-strategy ablation grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationPoint {
    /// The model evaluated.
    pub model: MobileModel,
    /// The mobility strategy of the adversary.
    pub mobility: MobilityStrategy,
    /// The corruption strategy of the adversary.
    pub corruption: CorruptionStrategy,
    /// The aggregated outcome of the cell.
    pub outcome: BatchOutcome,
}

/// Evaluates every (mobility, corruption) pair for every model at
/// `n = n_Mi(f)` (experiment **F4**), over the template's ε, round budget,
/// workload, and `f`. Every cell runs its model's mapped default MSR
/// instance — an explicit `template.function` is ignored, since a single
/// instance cannot be correctly parameterised for all four models at once.
///
/// All `(cell, seed)` pairs of the grid are flattened onto **one** global
/// work-stealing pool — the same scheduling [`Sweep::run`] uses — so a slow
/// cell (a worst-case adversary near the bound) no longer serializes the
/// cells behind it. Each cell's [`BatchOutcome`] is bit-identical to
/// running `scenario.batch(seeds).run()` on its own.
///
/// # Errors
///
/// Propagates the first failing `(cell, seed)` pair's error in grid-major,
/// seed-minor order — the same error the old sequential cell loop surfaced.
pub fn adversary_ablation<I: IntoIterator<Item = u64>>(
    template: &Scenario,
    seeds: I,
) -> Result<Vec<AblationPoint>> {
    let mut cells = Vec::new();
    for model in MobileModel::ALL {
        for mobility in MobilityStrategy::ALL {
            for corruption in CorruptionStrategy::all_representative() {
                let scenario = Scenario {
                    model,
                    n: model.required_processes(template.f),
                    mobility,
                    corruption,
                    function: None,
                    ..template.clone()
                };
                cells.push((model, mobility, corruption, scenario));
            }
        }
    }

    // The grid *is* a sweep over adversary cells: reuse its flattened pool,
    // seed normalization, regrouping, and error ordering wholesale.
    let points = Sweep::over(cells.iter().map(|(_, _, _, scenario)| scenario.clone()))
        .seeds(seeds)
        .run()?;
    Ok(cells
        .iter()
        .zip(points)
        .map(|((model, mobility, corruption, _), point)| AblationPoint {
            model: *model,
            mobility: *mobility,
            corruption: *corruption,
            outcome: point.outcome,
        })
        .collect())
}

/// The diameter trajectories of one mobile run and its static mixed-mode
/// image (experiment **F3**, Theorem 1's equivalence).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquivalencePoint {
    /// The seed shared by the two runs.
    pub seed: u64,
    /// End-of-round diameters of the mobile execution.
    pub mobile_diameters: Vec<f64>,
    /// End-of-round diameters of the static mixed-mode execution.
    pub static_diameters: Vec<f64>,
    /// Whether both runs reached ε-agreement.
    pub both_converged: bool,
}

impl EquivalencePoint {
    /// Rounds the mobile run needed (length of its trajectory).
    #[must_use]
    pub fn mobile_rounds(&self) -> usize {
        self.mobile_diameters.len()
    }

    /// Rounds the static run needed.
    #[must_use]
    pub fn static_rounds(&self) -> usize {
        self.static_diameters.len()
    }
}

/// Runs, for each seed, a mobile execution of the scenario and a static
/// mixed-mode execution with the mapped fault counts (Lemmas 1–4), under
/// comparable adversarial value strategies, and returns both diameter
/// trajectories.
///
/// # Errors
///
/// Propagates configuration and engine errors. Rejects scenarios with a
/// partial [`Topology`](mbaa_net::Topology): Theorem 1's equivalence is
/// stated on the fully connected network, and the static mixed-mode
/// simulator has no topology axis — comparing a masked mobile run against
/// an all-to-all static image would claim an equivalence that was never
/// computed on the same graph.
pub fn mobile_vs_static<I: IntoIterator<Item = u64>>(
    scenario: &Scenario,
    seeds: I,
) -> Result<Vec<EquivalencePoint>> {
    if !scenario.topology.is_complete() {
        return Err(Error::InvalidParameter(format!(
            "mobile_vs_static requires the complete topology (Theorem 1's setting); \
             got {} — run the mobile side alone via Scenario::batch instead",
            scenario.topology
        )));
    }
    if scenario.schedule.is_some() || !scenario.link_faults.is_clean() {
        return Err(Error::InvalidParameter(
            "mobile_vs_static requires a static fault-free network (Theorem 1's \
             setting); drop the topology schedule / link-fault plan and run the \
             mobile side alone via Scenario::batch instead"
                .into(),
        ));
    }
    let epsilon = Epsilon::try_new(scenario.epsilon)
        .ok_or_else(|| Error::InvalidParameter("epsilon must be > 0".into()))?;
    let counts = scenario.model.mixed_fault_counts(scenario.f);
    // The static image runs the same voting function as the mobile
    // execution, honouring an explicit override.
    let function = scenario
        .function
        .unwrap_or_else(|| defaults::model_default_function(scenario.model, scenario.f));

    seeds
        .into_iter()
        .map(|seed| {
            let mobile = scenario.run(seed)?;
            let inputs = scenario.initial_values(seed);

            let assignment = FaultAssignment::with_first_processes_faulty(scenario.n, counts)?;
            let static_sim =
                StaticSimulator::new(assignment, StaticBehavior::spread_attack(), seed);
            let static_outcome =
                static_sim.run(&function, &inputs, epsilon, scenario.max_rounds)?;

            Ok(EquivalencePoint {
                seed,
                mobile_diameters: mobile.report.diameters().to_vec(),
                static_diameters: static_outcome.report.diameters().to_vec(),
                both_converged: mobile.reached_agreement && static_outcome.reached_agreement,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbaa_msr::MsrFunction;

    fn small() -> Scenario {
        Scenario::at_bound(MobileModel::Buhrman, 2).max_rounds(200)
    }

    #[test]
    fn batch_runs_every_seed_sorted() {
        let batch = small().batch([3, 1, 2, 0]).run().unwrap();
        assert_eq!(batch.len(), 4);
        let seeds: Vec<u64> = batch.iter().map(|(s, _)| s).collect();
        assert_eq!(seeds, vec![0, 1, 2, 3]);
        assert!(batch.all_succeeded());
        assert_eq!(batch.success_rate(), 1.0);
        assert!(batch.mean_rounds().unwrap() >= 1.0);
    }

    #[test]
    fn batch_is_order_independent_and_deduplicated() {
        let a = small().batch([0, 1, 2]).run().unwrap();
        let b = small().batch([2, 0, 1, 1, 2]).run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn batch_matches_single_runs() {
        let scenario = small();
        let batch = scenario.batch(0..3).run().unwrap();
        for (seed, outcome) in batch.iter() {
            assert_eq!(outcome, &scenario.run(seed).unwrap());
        }
        assert_eq!(batch.get(1), Some(&scenario.run(1).unwrap()));
        assert_eq!(batch.get(99), None);
    }

    #[test]
    fn summaries_match_the_lowered_experiment_path() {
        let scenario = small();
        let via_batch = scenario.batch(0..4).run().unwrap().to_experiment_result();
        let via_experiment = scenario.batch(0..4).summarize().unwrap();
        assert_eq!(via_batch, via_experiment);
    }

    #[test]
    fn summarize_applies_the_same_seed_normalisation_as_run() {
        // Duplicate, unordered seeds must describe the same runs on both
        // paths.
        let runner = small().batch([3, 1, 1, 0, 3]);
        let via_batch = runner.run().unwrap().to_experiment_result();
        let via_experiment = runner.summarize().unwrap();
        assert_eq!(via_batch, via_experiment);
        assert_eq!(
            via_experiment
                .runs
                .iter()
                .map(|r| r.seed)
                .collect::<Vec<_>>(),
            vec![0, 1, 3]
        );
    }

    #[test]
    fn empty_batch_is_legal() {
        let batch = small().batch(std::iter::empty()).run().unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.success_rate(), 0.0);
        assert!(!batch.all_succeeded());
        assert_eq!(batch.mean_rounds(), None);
    }

    #[test]
    fn below_bound_batch_errors_deterministically() {
        let scenario = Scenario::new(MobileModel::Garay, 8, 2);
        let err = scenario.batch(0..3).run().unwrap_err();
        assert!(matches!(
            err,
            Error::InsufficientProcesses {
                required: 9,
                n: 8,
                ..
            }
        ));
        assert!(scenario
            .clone()
            .allow_bound_violation()
            .batch(0..3)
            .run()
            .is_ok());
    }

    #[test]
    fn stream_matches_the_eager_experiment_result() {
        let runner = small().batch([4, 2, 0, 2, 1]);
        let eager = runner.run().unwrap().to_experiment_result();
        let streamed = runner.stream().unwrap();
        assert_eq!(eager, streamed);
        assert_eq!(streamed, runner.summarize().unwrap());
    }

    #[test]
    fn stream_with_observes_every_completed_run() {
        let runner = small().batch(0..5);
        let seen = std::sync::Mutex::new(Vec::new());
        let streamed = runner
            .stream_with(|summary| seen.lock().unwrap().push(summary.seed))
            .unwrap();
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(streamed, runner.run().unwrap().to_experiment_result());
    }

    #[test]
    fn batch_results_are_identical_for_every_worker_budget() {
        let reference = small().batch(0..6).workers(1).run().unwrap();
        for width in [2usize, 3, 16] {
            let outcome = small().batch(0..6).workers(width).run().unwrap();
            assert_eq!(outcome, reference, "{width} workers diverged");
        }
        assert_eq!(small().batch(0..6).run().unwrap(), reference);
    }

    #[test]
    fn sweep_runs_every_point() {
        let sweep = small().sweep_n(2).seeds(0..2);
        let points = sweep.run().unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].scenario.n, 7);
        assert_eq!(points[2].scenario.n, 9);
        assert!(points.iter().all(|p| p.outcome.all_succeeded()));
    }

    #[test]
    fn flattened_sweep_matches_per_point_batches_for_every_worker_budget() {
        // Mixed costs on purpose: the bound point converges slowly, the
        // wider points quickly — exactly the shape static chunking stalls
        // on. Every width must regroup to identical per-point outcomes.
        let sweep = small().sweep_n(2).seeds([3, 0, 2, 0]);
        let reference: Vec<SweepPoint> = sweep.clone().workers(1).run().unwrap();
        for width in [2usize, 5, 32] {
            let points = sweep.clone().workers(width).run().unwrap();
            assert_eq!(points, reference, "{width} workers diverged");
        }
        for point in &reference {
            assert_eq!(
                point.outcome,
                point.scenario.batch([3, 0, 2, 0]).run().unwrap()
            );
        }
    }

    #[test]
    fn streamed_sweep_matches_the_eager_sweep() {
        let sweep = small().sweep_n(1).seeds(0..3);
        let eager = sweep.run().unwrap();
        let streamed = sweep.stream().unwrap();
        assert_eq!(eager.len(), streamed.len());
        for (point, summary) in eager.iter().zip(&streamed) {
            assert_eq!(point.scenario, summary.scenario);
            assert_eq!(point.outcome.to_experiment_result(), summary.result);
        }
    }

    #[test]
    fn sweep_error_is_the_first_failing_point_major_pair() {
        // Second point is below the bound; the flattened pool must still
        // surface that point's smallest-seed error, not an arbitrary one.
        let ok = small();
        let bad = Scenario::new(MobileModel::Garay, 8, 2);
        let err = Sweep::over([ok, bad]).seeds(0..3).run().unwrap_err();
        assert!(matches!(
            err,
            Error::InsufficientProcesses {
                required: 9,
                n: 8,
                ..
            }
        ));
    }

    #[test]
    fn empty_sweep_and_empty_seed_batch_are_legal() {
        assert!(Sweep::over([]).seeds(0..3).run().unwrap().is_empty());
        let points = small().sweep_n(1).seeds(std::iter::empty()).run().unwrap();
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.outcome.is_empty()));
        assert!(Sweep::over([]).stream().unwrap().is_empty());
    }

    #[test]
    fn ablation_covers_the_full_grid() {
        let template = Scenario::at_bound(MobileModel::Buhrman, 1).max_rounds(150);
        let points = adversary_ablation(&template, 0..1).unwrap();
        let expected = MobileModel::ALL.len()
            * MobilityStrategy::ALL.len()
            * CorruptionStrategy::all_representative().len();
        assert_eq!(points.len(), expected);
        for p in &points {
            assert!(
                p.outcome.all_succeeded(),
                "{} with {}/{} failed above the bound",
                p.model,
                p.mobility,
                p.corruption
            );
        }
    }

    #[test]
    fn stream_with_reports_every_completed_point_identically() {
        let sweep = small().sweep_n(2).seeds([2, 0, 1]);
        let seen = Mutex::new(Vec::new());
        let summaries = sweep
            .stream_with(|point| seen.lock().unwrap().push(point.clone()))
            .unwrap();
        let mut seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), summaries.len());
        // Completion order is scheduling-dependent; the content is not:
        // every reported point is bit-identical to the returned entry.
        seen.sort_unstable_by_key(|p| p.scenario.n);
        assert_eq!(seen, summaries);
    }

    #[test]
    fn stream_with_reports_empty_points_and_skips_failing_ones() {
        let empty = small().sweep_n(1).seeds(std::iter::empty());
        let count = std::sync::atomic::AtomicUsize::new(0);
        let summaries = empty
            .stream_with(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), summaries.len());

        // A failing point is never handed to the callback.
        let bad = Scenario::new(MobileModel::Garay, 8, 2);
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let err = Sweep::over([bad]).seeds(0..2).stream_with(|_| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert!(err.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn runner_stream_metrics_matches_stream_for_every_worker_budget() {
        let runner = small().batch(0..5);
        let (result, metrics) = runner.stream_metrics().unwrap();
        assert_eq!(result, runner.stream().unwrap());
        assert_eq!(metrics.runs, 5);
        assert_eq!(metrics.converged, 5);
        assert_eq!(metrics.rounds_to_converge.total(), 5);
        let (reference, ref_metrics) = small().batch(0..5).workers(1).stream_metrics().unwrap();
        assert_eq!(reference, result);
        assert_eq!(ref_metrics, metrics);
        for width in [2usize, 8] {
            let (r, m) = small().batch(0..5).workers(width).stream_metrics().unwrap();
            assert_eq!(r, reference, "{width} workers diverged");
            assert_eq!(m, ref_metrics, "{width} workers: registry diverged");
        }
    }

    #[test]
    fn sweep_stream_metrics_matches_stream_and_sums_the_points() {
        let sweep = small().sweep_n(1).seeds(0..3);
        let (summaries, metrics) = sweep.stream_metrics().unwrap();
        assert_eq!(summaries, sweep.stream().unwrap());
        // The sweep registry is the merge of each point's own registry.
        let mut expected = MetricsRegistry::new();
        for point in sweep.points() {
            let (_, point_metrics) = point.batch(0..3).stream_metrics().unwrap();
            expected.merge(&point_metrics);
        }
        assert_eq!(metrics, expected);
        for width in [1usize, 2, 8] {
            let (s, m) = sweep.clone().workers(width).stream_metrics().unwrap();
            assert_eq!(s, summaries, "{width} workers diverged");
            assert_eq!(m, metrics, "{width} workers: registry diverged");
        }
    }

    #[test]
    fn observe_metrics_equals_plain_run() {
        let scenario = small();
        let (outcome, metrics) = scenario.observe_metrics(7).unwrap();
        assert_eq!(outcome, scenario.run(7).unwrap());
        assert_eq!(metrics.runs, 1);
        assert_eq!(metrics.rounds_total, outcome.rounds_executed as u64);
    }

    #[test]
    fn stream_with_is_deterministic_for_every_worker_budget() {
        let sweep = || small().sweep_n(1).seeds(0..3);
        let reference = sweep().workers(1).stream_with(|_| {}).unwrap();
        for width in [2usize, 8] {
            assert_eq!(
                sweep().workers(width).stream_with(|_| {}).unwrap(),
                reference,
                "{width} workers diverged"
            );
        }
    }

    #[test]
    fn flattened_ablation_matches_per_cell_batches() {
        // The flattened grid must regroup to the exact BatchOutcome each
        // cell's standalone batch produces — unordered duplicate seeds and
        // all.
        let template = Scenario::at_bound(MobileModel::Buhrman, 1).max_rounds(150);
        let points = adversary_ablation(&template, [1, 0, 1]).unwrap();
        for p in &points {
            assert_eq!(p.outcome, p.outcome.scenario.batch([0, 1]).run().unwrap());
        }
    }

    #[test]
    fn ablation_ignores_an_explicit_function_override() {
        // A single MSR instance cannot fit all four models; the grid must
        // run each model's mapped default even when the template carries an
        // override tuned to one model.
        let template = Scenario::at_bound(MobileModel::Buhrman, 1)
            .max_rounds(150)
            .function(MsrFunction::for_fault_counts(
                MobileModel::Buhrman.mixed_fault_counts(1),
            ));
        let points = adversary_ablation(&template, 0..1).unwrap();
        assert!(points.iter().all(|p| p.outcome.all_succeeded()));
        assert!(points.iter().all(|p| p.outcome.scenario.function.is_none()));
    }

    #[test]
    fn mobile_vs_static_honours_an_explicit_function() {
        let function = MsrFunction::fault_tolerant_midpoint(2);
        let scenario = Scenario::new(MobileModel::Garay, 9, 2)
            .max_rounds(200)
            .function(function);
        let points = mobile_vs_static(&scenario, 0..2).unwrap();
        // The FT-midpoint halves the diameter per round; both sides must
        // still converge, running the *same* rule.
        for p in &points {
            assert!(p.both_converged, "seed {} diverged", p.seed);
        }
    }

    #[test]
    fn mobile_vs_static_rejects_partial_topologies() {
        // The static mixed-mode simulator has no topology axis; claiming
        // Theorem 1's equivalence across different graphs would be wrong.
        use mbaa_net::Topology;
        let scenario = Scenario::new(MobileModel::Garay, 9, 1)
            .max_rounds(100)
            .topology(Topology::Ring { k: 2 });
        let err = mobile_vs_static(&scenario, 0..2).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
        assert!(err.to_string().contains("complete topology"));
    }

    #[test]
    fn mobile_vs_static_rejects_schedules_and_link_faults() {
        use mbaa_net::{LinkFaultPlan, Topology, TopologySchedule};
        let scheduled = Scenario::new(MobileModel::Garay, 9, 1)
            .max_rounds(100)
            .topology_schedule(TopologySchedule::SeededChurn {
                base: Topology::Complete,
                flip_rate: 0.2,
            });
        assert!(mobile_vs_static(&scheduled, 0..1).is_err());
        let faulted = Scenario::new(MobileModel::Garay, 9, 1)
            .max_rounds(100)
            .link_faults(LinkFaultPlan::new().omit_all(0.1));
        assert!(mobile_vs_static(&faulted, 0..1).is_err());
    }

    #[test]
    fn mobile_and_static_trajectories_both_converge() {
        let scenario = Scenario::new(MobileModel::Garay, 9, 2).max_rounds(200);
        let points = mobile_vs_static(&scenario, 0..3).unwrap();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.both_converged, "seed {} diverged", p.seed);
            assert!(p.mobile_rounds() > 0);
            assert!(p.static_rounds() > 0);
        }
    }
}
