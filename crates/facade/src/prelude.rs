//! The convenience import: `use mbaa::prelude::*;` brings in the
//! [`Scenario`] entry point, its runners and outcomes, and the vocabulary
//! types every experiment description needs.
//!
//! ```
//! use mbaa::prelude::*;
//!
//! let outcome = Scenario::at_bound(MobileModel::Buhrman, 2).run(7)?;
//! assert!(outcome.reached_agreement);
//! # Ok::<(), mbaa::Error>(())
//! ```

pub use crate::runner::{
    adversary_ablation, mobile_vs_static, stream_segments, stream_segments_metrics, AblationPoint,
    BatchOutcome, EquivalencePoint, Runner, SeededRun, Sweep, SweepPoint, SweepSummary,
};
pub use crate::scenario::Scenario;

pub use mbaa_adversary::{CorruptionStrategy, MobilityStrategy};
pub use mbaa_core::{MobileEngine, MobileRunOutcome, Observe, ProtocolConfig, RoundSnapshot};
pub use mbaa_msr::{MedianVoting, MsrFunction, VotingFunction};
pub use mbaa_net::{
    Adjacency, DirectedAdjacency, DisconnectionPolicy, LinkFaultPlan, LinkFaultRule, Topology,
    TopologySchedule,
};
pub use mbaa_obs::{EventLog, MetricsRegistry, NoopObserver, Observer};
pub use mbaa_sim::{
    run_experiment, run_experiment_with, ExperimentConfig, ExperimentResult, RunSummary, Workload,
};
pub use mbaa_types::{
    Epsilon, Error, FaultCounts, FaultState, Interval, MobileModel, ProcessId, Value, ValueMultiset,
};
