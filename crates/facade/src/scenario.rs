//! The [`Scenario`] builder: the single entry point describing one
//! experiment point of the paper.
//!
//! A scenario is the `(model, n, f, ε, adversary, algorithm, workload)`
//! tuple every table and figure of Bonomi et al. (ICDCS 2016) sweeps. It
//! *lowers* to the pre-existing forms instead of replacing them:
//!
//! * [`Scenario::run`] lowers to a [`ProtocolConfig`] and executes one
//!   seeded run on the [`MobileEngine`] — bit-identical to building the
//!   `ProtocolConfig` by hand.
//! * [`Scenario::batch`] produces a [`Runner`](crate::Runner) that fans a
//!   seed batch out on rayon and aggregates full outcomes into a
//!   [`BatchOutcome`](crate::BatchOutcome).
//! * [`Scenario::sweep_n`] / [`Scenario::sweep_f`] produce
//!   [`Sweep`](crate::Sweep)s over system size or agent count.
//!
//! Every default an unspecified knob receives is decided here (drawing on
//! [`mbaa_core::defaults`]), not in the lowered forms: experiment-grade
//! ε = 1e-3, a 300-round budget, the worst-case adversary
//! (extreme-targeting mobility + split corruption), the model's mapped MSR
//! instance, and the unit-interval spread workload.

use serde::{Deserialize, Serialize};

use mbaa_adversary::{CorruptionStrategy, MobilityStrategy};
use mbaa_core::{defaults, MobileEngine, MobileRunOutcome, Observe, ProtocolConfig};
use mbaa_msr::{MsrFunction, VotingFunction};
use mbaa_net::{DisconnectionPolicy, LinkFaultPlan, Topology, TopologySchedule};
use mbaa_obs::{MetricsRegistry, Observer};
use mbaa_sim::{ExperimentConfig, Workload};
use mbaa_types::{MobileModel, Result, Value};

use crate::runner::{Runner, Sweep};

/// A builder-first description of one experiment point: the
/// `(model, n, f, ε, adversary, algorithm, workload)` tuple the paper's
/// tables sweep.
///
/// Construct with [`Scenario::new`], refine with the chainable setters, and
/// lower with [`run`](Scenario::run) (single seed),
/// [`batch`](Scenario::batch) (parallel seed batch), or the `sweep_*`
/// methods (parameter sweeps).
///
/// # Example
///
/// ```
/// use mbaa::prelude::*;
///
/// let scenario = Scenario::new(MobileModel::Garay, 9, 2).epsilon(1e-4);
/// let outcome = scenario.run(42)?;
/// assert!(outcome.reached_agreement && outcome.validity_holds());
/// # Ok::<(), mbaa::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The mobile Byzantine model.
    pub model: MobileModel,
    /// The number of processes.
    pub n: usize,
    /// The number of mobile agents.
    pub f: usize,
    /// The agreement tolerance ε.
    pub epsilon: f64,
    /// The per-run round budget.
    pub max_rounds: usize,
    /// The adversary's agent placement strategy.
    pub mobility: MobilityStrategy,
    /// The adversary's value corruption strategy.
    pub corruption: CorruptionStrategy,
    /// The communication graph every exchange is mediated by
    /// ([`Topology::Complete`] by default — the paper's network).
    pub topology: Topology,
    /// The per-round topology schedule — the mobile-network axis — or
    /// `None` for the static [`topology`](Scenario::topology).
    pub schedule: Option<TopologySchedule>,
    /// Per-link omission/delay faults layered on the structural mask
    /// (clean by default — the paper's reliable links).
    pub link_faults: LinkFaultPlan,
    /// What a dynamic schedule does with a transiently disconnected round
    /// (record by default).
    pub disconnection: DisconnectionPolicy,
    /// The MSR instance to run, or `None` for the model's mapped default.
    pub function: Option<MsrFunction>,
    /// How initial values are generated.
    pub workload: Workload,
    /// Whether `n` below the model's replica bound is permitted.
    pub allow_bound_violation: bool,
    /// How much of each run the engine records
    /// ([`Observe::Full`] by default, so single runs stay inspectable;
    /// summary-level batch and stream paths always execute at
    /// [`Observe::Summary`] — the allocation-free steady state — since
    /// summaries are bit-identical across levels). Defaults on
    /// deserialization so pre-`Observe` documents still load.
    #[serde(default)]
    pub observe: Observe,
}

impl Scenario {
    /// Describes `n` processes attacked by `f` mobile agents under `model`,
    /// with the workspace defaults: experiment-grade ε = 1e-3, a 300-round
    /// budget, the worst-case adversary (extreme-targeting mobility, split
    /// corruption), the model's mapped MSR instance, and evenly spread
    /// initial values in `[0, 1]`.
    #[must_use]
    pub fn new(model: MobileModel, n: usize, f: usize) -> Self {
        Scenario {
            model,
            n,
            f,
            epsilon: defaults::EXPERIMENT_EPSILON,
            max_rounds: defaults::EXPERIMENT_MAX_ROUNDS,
            mobility: defaults::worst_case_mobility(),
            corruption: defaults::worst_case_corruption(),
            topology: Topology::Complete,
            schedule: None,
            link_faults: LinkFaultPlan::default(),
            disconnection: DisconnectionPolicy::default(),
            function: None,
            workload: Workload::default(),
            allow_bound_violation: false,
            observe: Observe::default(),
        }
    }

    /// Describes the smallest legal system for `f` agents under `model`
    /// (`n = n_Mi`, Table 2).
    #[must_use]
    pub fn at_bound(model: MobileModel, f: usize) -> Self {
        Scenario::new(model, model.required_processes(f), f)
    }

    /// Sets the agreement tolerance ε.
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the per-run round budget.
    #[must_use]
    pub fn max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the agent placement strategy.
    #[must_use]
    pub fn mobility(mut self, mobility: MobilityStrategy) -> Self {
        self.mobility = mobility;
        self
    }

    /// Sets the value corruption strategy.
    #[must_use]
    pub fn corruption(mut self, corruption: CorruptionStrategy) -> Self {
        self.corruption = corruption;
        self
    }

    /// Sets both adversary strategies at once.
    #[must_use]
    pub fn adversary(mut self, mobility: MobilityStrategy, corruption: CorruptionStrategy) -> Self {
        self.mobility = mobility;
        self.corruption = corruption;
        self
    }

    /// Sets the communication graph (default [`Topology::Complete`]).
    ///
    /// Lowering validates the graph: disconnected topologies are rejected
    /// with a typed error, and a partial graph must give every process a
    /// closed neighbourhood of at least the model's replica requirement
    /// `n_Mi` unless
    /// [`allow_bound_violation`](Scenario::allow_bound_violation) is set.
    ///
    /// # Example
    ///
    /// ```
    /// use mbaa::prelude::*;
    ///
    /// // 9 processes on a ring lattice, each hearing 2 neighbours per side.
    /// let outcome = Scenario::new(MobileModel::Garay, 9, 1)
    ///     .topology(Topology::Ring { k: 2 })
    ///     .run(0)?;
    /// assert!(outcome.rounds_executed > 0);
    /// # Ok::<(), mbaa::Error>(())
    /// ```
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets a per-round topology schedule — the mobile-*network* axis,
    /// composing with the mobile adversary. Use
    /// [`TopologySchedule::Static`] instead of also setting
    /// [`topology`](Scenario::topology) (lowering rejects the ambiguous
    /// combination).
    ///
    /// # Example
    ///
    /// ```
    /// use mbaa::prelude::*;
    ///
    /// // Every link of the complete graph is down 20% of the rounds.
    /// let outcome = Scenario::new(MobileModel::Garay, 9, 1)
    ///     .topology_schedule(TopologySchedule::SeededChurn {
    ///         base: Topology::Complete,
    ///         flip_rate: 0.2,
    ///     })
    ///     .run(0)?;
    /// assert!(outcome.rounds_executed > 0);
    /// assert!(outcome.network_stats.unreachable > 0);
    /// # Ok::<(), mbaa::Error>(())
    /// ```
    #[must_use]
    pub fn topology_schedule(mut self, schedule: TopologySchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Sets the per-link omission/delay fault plan (clean by default).
    /// Lowering validates every rule against the universe; losses and
    /// delays are accounted in the dedicated
    /// [`NetworkStats`](mbaa_net::NetworkStats) fields, never as adversary
    /// omissions.
    #[must_use]
    pub fn link_faults(mut self, link_faults: LinkFaultPlan) -> Self {
        self.link_faults = link_faults;
        self
    }

    /// Sets the per-round disconnection policy of a dynamic schedule
    /// (default [`DisconnectionPolicy::Record`]).
    #[must_use]
    pub fn disconnection(mut self, policy: DisconnectionPolicy) -> Self {
        self.disconnection = policy;
        self
    }

    /// Sets the MSR instance explicitly (the default is the instance tuned
    /// to the model's mapped fault counts, Lemmas 1–4).
    #[must_use]
    pub fn function(mut self, function: MsrFunction) -> Self {
        self.function = Some(function);
        self
    }

    /// Sets the initial-value workload.
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the observability level of single runs and full-outcome batches
    /// (default [`Observe::Full`]). Purely an observation knob: every field
    /// an outcome does record is bit-identical across levels, but
    /// [`Observe::Summary`] skips per-round snapshots and the network trace
    /// entirely, keeping steady-state rounds allocation-free.
    ///
    /// # Example
    ///
    /// ```
    /// use mbaa::prelude::*;
    ///
    /// let scenario = Scenario::at_bound(MobileModel::Buhrman, 2);
    /// let full = scenario.clone().run(3)?;
    /// let lean = scenario.observe(Observe::Summary).run(3)?;
    /// assert!(lean.trace.is_empty() && lean.configurations.is_empty());
    /// assert_eq!(lean.final_votes, full.final_votes);
    /// assert_eq!(lean.report, full.report);
    /// # Ok::<(), mbaa::Error>(())
    /// ```
    #[must_use]
    pub fn observe(mut self, observe: Observe) -> Self {
        self.observe = observe;
        self
    }

    /// Fixes the initial values explicitly (sugar for a
    /// [`Workload::Fixed`] workload). The vector length must equal `n` by
    /// the time the scenario runs.
    #[must_use]
    pub fn inputs<I: IntoIterator<Item = Value>>(mut self, values: I) -> Self {
        self.workload = Workload::Fixed {
            values: values.into_iter().collect(),
        };
        self
    }

    /// Permits `n` below the model's replica bound (threshold sweeps and
    /// lower-bound experiments).
    #[must_use]
    pub fn allow_bound_violation(mut self) -> Self {
        self.allow_bound_violation = true;
        self
    }

    /// Returns `true` when `n` satisfies the model's replica requirement
    /// `n > c·f` (Table 2).
    #[must_use]
    pub fn satisfies_bound(&self) -> bool {
        self.n >= self.model.required_processes(self.f)
    }

    /// Lowers this scenario to the validated [`ProtocolConfig`] of one
    /// seeded run.
    ///
    /// # Errors
    ///
    /// Propagates the builder's validation errors (zero-sized system, `f`
    /// exceeding `n`, or `n` below the bound without
    /// [`allow_bound_violation`](Scenario::allow_bound_violation)).
    pub fn lower(&self, seed: u64) -> Result<ProtocolConfig> {
        let mut builder = ProtocolConfig::builder(self.model, self.n, self.f)
            .epsilon(self.epsilon)
            .max_rounds(self.max_rounds)
            .mobility(self.mobility)
            .corruption(self.corruption)
            .topology(self.topology.clone())
            .link_faults(self.link_faults.clone())
            .disconnection(self.disconnection)
            .observe(self.observe)
            .seed(seed);
        if let Some(schedule) = &self.schedule {
            builder = builder.topology_schedule(schedule.clone());
        }
        if let Some(function) = self.function {
            builder = builder.function(function);
        }
        if self.allow_bound_violation {
            builder = builder.allow_bound_violation();
        }
        builder.build()
    }

    /// Lowers this scenario to the [`ExperimentConfig`] of a seed batch —
    /// the aggregate-summary form consumed by
    /// [`mbaa_sim::run_experiment`].
    #[must_use]
    pub fn to_experiment<I: IntoIterator<Item = u64>>(&self, seeds: I) -> ExperimentConfig {
        ExperimentConfig {
            model: self.model,
            n: self.n,
            f: self.f,
            epsilon: self.epsilon,
            max_rounds: self.max_rounds,
            mobility: self.mobility,
            corruption: self.corruption,
            topology: self.topology.clone(),
            schedule: self.schedule.clone(),
            link_faults: self.link_faults.clone(),
            disconnection: self.disconnection,
            function: self.function,
            seeds: seeds.into_iter().collect(),
            workload: self.workload.clone(),
            allow_bound_violation: self.allow_bound_violation,
            observe: self.observe,
        }
    }

    /// The initial values of one seeded run, generated by the workload.
    #[must_use]
    pub fn initial_values(&self, seed: u64) -> Vec<Value> {
        self.workload.generate(self.n, seed)
    }

    /// Runs this scenario once with `seed`, driving both the adversary and
    /// the workload. The result is bit-identical to lowering by hand:
    /// building the same [`ProtocolConfig`], generating the workload, and
    /// calling [`MobileEngine::run`].
    ///
    /// # Errors
    ///
    /// Propagates lowering and engine errors.
    pub fn run(&self, seed: u64) -> Result<MobileRunOutcome> {
        let config = self.lower(seed)?;
        let inputs = self.initial_values(seed);
        MobileEngine::new(config).run(&inputs)
    }

    /// Runs this scenario once with `seed` while feeding every telemetry
    /// event — per-round diameters, contraction, fault and delivery counts,
    /// convergence, and the run-end record — to `observer`. The outcome is
    /// bit-identical to [`Scenario::run`] with any observer attached,
    /// including the no-op one.
    ///
    /// # Errors
    ///
    /// Propagates lowering and engine errors.
    pub fn run_observed<O: Observer>(
        &self,
        seed: u64,
        observer: &mut O,
    ) -> Result<MobileRunOutcome> {
        let config = self.lower(seed)?;
        let inputs = self.initial_values(seed);
        MobileEngine::new(config).run_observed(&inputs, observer)
    }

    /// Runs this scenario once with `seed` and folds the telemetry stream
    /// into a fresh [`MetricsRegistry`] — the single-run form of
    /// [`Runner::stream_metrics`](crate::Runner::stream_metrics). The
    /// outcome is bit-identical to [`Scenario::run`].
    ///
    /// # Errors
    ///
    /// Propagates lowering and engine errors.
    pub fn observe_metrics(&self, seed: u64) -> Result<(MobileRunOutcome, MetricsRegistry)> {
        let mut metrics = MetricsRegistry::new();
        let outcome = self.run_observed(seed, &mut metrics)?;
        Ok((outcome, metrics))
    }

    /// Runs this scenario once with an explicit voting function, overriding
    /// the configured MSR instance — used to compare MSR instances with
    /// non-MSR baselines under identical adversaries.
    ///
    /// # Errors
    ///
    /// Propagates lowering and engine errors.
    pub fn run_with_function(
        &self,
        function: &dyn VotingFunction,
        seed: u64,
    ) -> Result<MobileRunOutcome> {
        let config = self.lower(seed)?;
        let inputs = self.initial_values(seed);
        MobileEngine::new(config).run_with_function(function, &inputs)
    }

    /// A [`Runner`] over this scenario and a seed batch; `run()` fans the
    /// seeds out on the work-stealing pool and aggregates full outcomes
    /// into a [`BatchOutcome`](crate::BatchOutcome), while `stream()` folds
    /// each run into its summary on the worker — flat memory for very
    /// large batches. Both are deterministic for every worker count.
    #[must_use]
    pub fn batch<I: IntoIterator<Item = u64>>(&self, seeds: I) -> Runner {
        Runner::new(self.clone(), seeds)
    }

    /// A sweep over the system size: `n` from the model's requirement
    /// `n_Mi` up to `n_Mi + extra`, everything else as in this scenario.
    #[must_use]
    pub fn sweep_n(&self, extra: usize) -> Sweep {
        let start = self.model.required_processes(self.f);
        let points = (start..=start + extra)
            .map(|n| Scenario { n, ..self.clone() })
            .collect();
        Sweep::new(points)
    }

    /// A sweep over the agent count. Each point keeps this scenario's
    /// *margin* above the bound: at `f` agents it runs
    /// `n = n_Mi(f) + (self.n - n_Mi(self.f))` processes, so every point
    /// sits the same distance above its requirement.
    #[must_use]
    pub fn sweep_f<I: IntoIterator<Item = usize>>(&self, fs: I) -> Sweep {
        let margin = self.n.saturating_sub(self.model.required_processes(self.f));
        let points = fs
            .into_iter()
            .map(|f| Scenario {
                f,
                n: self.model.required_processes(f) + margin,
                ..self.clone()
            })
            .collect();
        Sweep::new(points)
    }

    /// A sweep over the network connectivity: one point per topology,
    /// everything else as in this scenario. Like every [`Sweep`], `run()`
    /// and `stream()` flatten all `(point, seed)` pairs onto the shared
    /// work-stealing pool, so a slow sparse point never serializes the
    /// denser points behind it — this is the convergence-vs-degree surface
    /// of the Li–Hurfin–Wang connectivity regimes
    /// (see `examples/partial_connectivity.rs`).
    #[must_use]
    pub fn sweep_connectivity<I: IntoIterator<Item = Topology>>(&self, topologies: I) -> Sweep {
        let points = topologies
            .into_iter()
            .map(|topology| Scenario {
                topology,
                ..self.clone()
            })
            .collect();
        Sweep::new(points)
    }

    /// A sweep over the network degree: one point per degree `d`, realized
    /// as `Ring { k: d / 2 }` for even degrees (deterministic circulant
    /// lattices) and `RandomRegular { degree: d }` for odd ones. This is
    /// the ROADMAP's degree-range convenience over
    /// [`sweep_connectivity`](Scenario::sweep_connectivity): charting
    /// convergence against the closed neighbourhood `d + 1` directly.
    ///
    /// No `d`-regular graph on `n` vertices exists when `n · d` is odd
    /// (handshake lemma), so odd degrees need an even `n`: an infeasible
    /// point fails the whole sweep at run time with the realization's
    /// typed error. Restrict an odd-`n` scenario to even degrees, e.g.
    /// `(lo..=hi).filter(|d| d % 2 == 0)`.
    ///
    /// # Example
    ///
    /// ```
    /// use mbaa::prelude::*;
    ///
    /// // Even n: every degree in the range is feasible.
    /// let sweep = Scenario::new(MobileModel::Garay, 10, 1)
    ///     .allow_bound_violation()
    ///     .sweep_degrees(2..=4);
    /// assert_eq!(sweep.points().len(), 3);
    /// assert_eq!(sweep.points()[0].topology, Topology::Ring { k: 1 });
    /// assert_eq!(
    ///     sweep.points()[1].topology,
    ///     Topology::RandomRegular { degree: 3 },
    /// );
    /// assert!(sweep.seeds(0..2).run().is_ok());
    /// ```
    #[must_use]
    pub fn sweep_degrees<I: IntoIterator<Item = usize>>(&self, degrees: I) -> Sweep {
        self.sweep_connectivity(degrees.into_iter().map(|degree| {
            if degree % 2 == 0 {
                Topology::Ring { k: degree / 2 }
            } else {
                Topology::RandomRegular { degree }
            }
        }))
    }

    /// A sweep over the churn rate: one point per `flip_rate`, each
    /// churning the scenario's *base graph* — the static/churned graph of
    /// an existing schedule, or the scenario's [`topology`] otherwise —
    /// with every link independently down that fraction of the rounds.
    /// This is the convergence-vs-churn surface of the Li–Hurfin–Wang
    /// evolving-network regimes (see `examples/mobile_network.rs`); like
    /// every [`Sweep`], all `(point, seed)` pairs are flattened onto the
    /// shared work-stealing pool.
    ///
    /// [`topology`]: Scenario::topology
    #[must_use]
    pub fn sweep_churn<I: IntoIterator<Item = f64>>(&self, flip_rates: I) -> Sweep {
        let base = match &self.schedule {
            Some(TopologySchedule::Static(topology)) => topology.clone(),
            Some(TopologySchedule::SeededChurn { base, .. }) => base.clone(),
            Some(TopologySchedule::Periodic { .. }) | None => self.topology.clone(),
        };
        let points = flip_rates
            .into_iter()
            .map(|flip_rate| Scenario {
                topology: Topology::Complete,
                schedule: Some(TopologySchedule::SeededChurn {
                    base: base.clone(),
                    flip_rate,
                }),
                ..self.clone()
            })
            .collect();
        Sweep::new(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_experiment_defaults() {
        let s = Scenario::new(MobileModel::Garay, 9, 2);
        assert_eq!(s.epsilon, defaults::EXPERIMENT_EPSILON);
        assert_eq!(s.max_rounds, defaults::EXPERIMENT_MAX_ROUNDS);
        assert_eq!(s.mobility, defaults::worst_case_mobility());
        assert_eq!(s.corruption, defaults::worst_case_corruption());
        assert_eq!(s.function, None);
        assert!(!s.allow_bound_violation);
    }

    #[test]
    fn lowering_preserves_every_knob() {
        let s = Scenario::new(MobileModel::Bonnet, 11, 2)
            .epsilon(0.25)
            .max_rounds(17)
            .mobility(MobilityStrategy::Random)
            .corruption(CorruptionStrategy::BoundaryDrag);
        let config = s.lower(99).unwrap();
        assert_eq!(config.model, MobileModel::Bonnet);
        assert_eq!((config.n, config.f), (11, 2));
        assert_eq!(config.epsilon.get(), 0.25);
        assert_eq!(config.max_rounds, 17);
        assert_eq!(config.mobility, MobilityStrategy::Random);
        assert_eq!(config.corruption, CorruptionStrategy::BoundaryDrag);
        assert_eq!(config.seed, 99);
        // The default function decision is made exactly once, in the
        // lowering path.
        assert_eq!(
            config.function,
            defaults::model_default_function(MobileModel::Bonnet, 2)
        );
    }

    #[test]
    fn bound_violations_require_opt_in() {
        let s = Scenario::new(MobileModel::Garay, 8, 2);
        assert!(!s.satisfies_bound());
        assert!(s.lower(0).is_err());
        assert!(s.allow_bound_violation().lower(0).is_ok());
    }

    #[test]
    fn at_bound_picks_the_table2_requirement() {
        for model in MobileModel::ALL {
            let s = Scenario::at_bound(model, 2);
            assert_eq!(s.n, model.required_processes(2));
            assert!(s.satisfies_bound());
        }
    }

    #[test]
    fn to_experiment_copies_the_description() {
        let s = Scenario::at_bound(MobileModel::Buhrman, 2).epsilon(1e-4);
        let exp = s.to_experiment(0..5);
        assert_eq!(exp.model, MobileModel::Buhrman);
        assert_eq!((exp.n, exp.f), (7, 2));
        assert_eq!(exp.epsilon, 1e-4);
        assert_eq!(exp.seeds, vec![0, 1, 2, 3, 4]);
        assert_eq!(exp.workload, Workload::default());
    }

    #[test]
    fn fixed_inputs_override_the_workload() {
        let values: Vec<Value> = (0..7).map(|i| Value::new(i as f64)).collect();
        let s = Scenario::at_bound(MobileModel::Buhrman, 2).inputs(values.clone());
        assert_eq!(s.initial_values(3), values);
        // Seed only drives the adversary when inputs are fixed.
        assert_eq!(s.initial_values(4), values);
    }

    #[test]
    fn sweep_n_covers_the_requested_range() {
        let sweep = Scenario::at_bound(MobileModel::Buhrman, 2).sweep_n(3);
        let ns: Vec<usize> = sweep.points().iter().map(|p| p.n).collect();
        assert_eq!(ns, vec![7, 8, 9, 10]);
    }

    #[test]
    fn default_topology_is_complete_and_lowers_through() {
        let s = Scenario::new(MobileModel::Garay, 9, 1);
        assert_eq!(s.topology, Topology::Complete);
        let ringed = s.topology(Topology::Ring { k: 2 });
        assert_eq!(ringed.lower(3).unwrap().topology, Topology::Ring { k: 2 });
        assert_eq!(ringed.to_experiment(0..2).topology, Topology::Ring { k: 2 });
    }

    #[test]
    fn sweep_connectivity_varies_only_the_topology() {
        let s = Scenario::new(MobileModel::Garay, 9, 1);
        let sweep = s.sweep_connectivity([
            Topology::Ring { k: 2 },
            Topology::Ring { k: 3 },
            Topology::Complete,
        ]);
        let topologies: Vec<Topology> = sweep.points().iter().map(|p| p.topology.clone()).collect();
        assert_eq!(
            topologies,
            vec![
                Topology::Ring { k: 2 },
                Topology::Ring { k: 3 },
                Topology::Complete,
            ]
        );
        assert!(sweep.points().iter().all(|p| p.n == 9 && p.f == 1));
    }

    #[test]
    fn schedule_and_link_faults_lower_through() {
        let schedule = TopologySchedule::SeededChurn {
            base: Topology::Complete,
            flip_rate: 0.25,
        };
        let plan = LinkFaultPlan::new().omit_all(0.1).delay(0, 1, 2);
        let s = Scenario::new(MobileModel::Garay, 9, 1)
            .topology_schedule(schedule.clone())
            .link_faults(plan.clone())
            .disconnection(DisconnectionPolicy::Reject);
        let config = s.lower(3).unwrap();
        assert_eq!(config.schedule, Some(schedule.clone()));
        assert_eq!(config.link_faults, plan);
        assert_eq!(config.disconnection, DisconnectionPolicy::Reject);
        let exp = s.to_experiment(0..2);
        assert_eq!(exp.schedule, Some(schedule));
        assert_eq!(exp.link_faults, plan);
        assert_eq!(exp.disconnection, DisconnectionPolicy::Reject);
    }

    #[test]
    fn sweep_degrees_picks_rings_for_even_and_regular_for_odd() {
        let s = Scenario::new(MobileModel::Garay, 10, 1).allow_bound_violation();
        let sweep = s.sweep_degrees(2..=5);
        let topologies: Vec<Topology> = sweep.points().iter().map(|p| p.topology.clone()).collect();
        assert_eq!(
            topologies,
            vec![
                Topology::Ring { k: 1 },
                Topology::RandomRegular { degree: 3 },
                Topology::Ring { k: 2 },
                Topology::RandomRegular { degree: 5 },
            ]
        );
        assert!(sweep.points().iter().all(|p| p.n == 10 && p.f == 1));
    }

    #[test]
    fn sweep_churn_churns_the_base_graph() {
        // Base from the static topology axis…
        let s = Scenario::new(MobileModel::Garay, 9, 1).topology(Topology::Ring { k: 3 });
        let sweep = s.sweep_churn([0.0, 0.2]);
        for (point, rate) in sweep.points().iter().zip([0.0, 0.2]) {
            assert_eq!(point.topology, Topology::Complete);
            assert_eq!(
                point.schedule,
                Some(TopologySchedule::SeededChurn {
                    base: Topology::Ring { k: 3 },
                    flip_rate: rate,
                })
            );
        }
        // …or from an existing churn schedule.
        let churned = Scenario::new(MobileModel::Garay, 9, 1).topology_schedule(
            TopologySchedule::SeededChurn {
                base: Topology::Grid,
                flip_rate: 0.5,
            },
        );
        let resweep = churned.sweep_churn([0.1]);
        assert_eq!(
            resweep.points()[0].schedule,
            Some(TopologySchedule::SeededChurn {
                base: Topology::Grid,
                flip_rate: 0.1,
            })
        );
    }

    #[test]
    fn sweep_f_keeps_the_margin_above_the_bound() {
        let s = Scenario::new(MobileModel::Garay, 11, 2); // margin 2 above 9
        let sweep = s.sweep_f(1..=3);
        let points: Vec<(usize, usize)> = sweep.points().iter().map(|p| (p.f, p.n)).collect();
        assert_eq!(points, vec![(1, 7), (2, 11), (3, 15)]);
    }
}
