//! # mbaa — Approximate Agreement under Mobile Byzantine Faults
//!
//! A reproduction of *"Approximate Agreement under Mobile Byzantine Faults"*
//! (Bonomi, Del Pozzo, Potop-Butucaru, Tixeuil — ICDCS 2016,
//! arXiv:1604.03871) as a Rust library: the MSR (Mean-Subsequence-Reduce)
//! family of approximate agreement algorithms running on a synchronous
//! message-passing simulator under all four mobile Byzantine fault models,
//! together with the Mobile-to-Mixed-Mode mapping, the replica bounds, and
//! the lower-bound constructions of the paper.
//!
//! # The Scenario API
//!
//! The documented entry point is [`Scenario`]: a builder-first description
//! of one experiment point — the `(model, n, f, ε, adversary, algorithm,
//! workload)` tuple every table of the paper sweeps — that *lowers* to the
//! internal forms on demand:
//!
//! * a single seeded run: [`Scenario::run`] (lowers to [`ProtocolConfig`] +
//!   [`MobileEngine`], bit-for-bit identical to driving them by hand),
//! * a parallel seed batch: [`Scenario::batch`] → [`Runner::run`] fans the
//!   seeds out on the work-stealing rayon pool and aggregates into a
//!   [`BatchOutcome`] keyed and sorted by seed,
//! * a streaming seed batch: [`Runner::stream`] folds each completed run
//!   into its [`RunSummary`] on the worker — flat memory for very large
//!   batches, bit-identical summaries,
//! * parameter sweeps: [`Scenario::sweep_n`], [`Scenario::sweep_f`],
//!   [`Scenario::sweep_connectivity`], [`adversary_ablation`], and
//!   [`mobile_vs_static`]. [`Sweep::run`] and [`Sweep::stream`] flatten
//!   all `(point, seed)` pairs into one global work pool under a single
//!   concurrency budget, so uneven points no longer serialize the sweep,
//!   and [`Sweep::stream_with`] reports each point as it completes.
//!
//! The network topology is a scenario axis: [`Scenario::topology`] accepts
//! a [`Topology`] (complete by default — the paper's network — or ring /
//! random-regular / grid / custom adjacency), validated at lowering time
//! against connectivity and the model's degree-dependent resilience
//! requirement. See `examples/partial_connectivity.rs` for the
//! convergence-vs-degree surface this opens.
//!
//! The network can itself be *mobile*: [`Scenario::topology_schedule`]
//! accepts a [`TopologySchedule`] (static, periodic phases, or seeded
//! per-round churn), [`Scenario::link_faults`] layers per-link omission and
//! delay faults ([`LinkFaultPlan`]) on the structural mask, and
//! [`Scenario::sweep_churn`] / [`Scenario::sweep_degrees`] sweep the churn
//! rate and the degree range on the shared pool. Link-attributable losses
//! are accounted separately from adversary omissions; see
//! `examples/mobile_network.rs` for the convergence-vs-churn-rate curve.
//!
//! All defaulting — experiment ε and round budget, the worst-case
//! adversary, the model's mapped MSR instance, the topology, the workload —
//! is decided in the scenario layer (backed by [`core::defaults`]),
//! so the lowered forms [`ProtocolConfig`] and [`ExperimentConfig`] stay
//! plain data.
//!
//! # Quickstart
//!
//! ```
//! use mbaa::prelude::*;
//!
//! // 9 sensors, 2 mobile Byzantine agents, Garay's model (n > 4f).
//! let scenario = Scenario::new(MobileModel::Garay, 9, 2)
//!     .epsilon(1e-3)
//!     .workload(Workload::UniformSpread { lo: 20.0, hi: 21.0 });
//!
//! // One seeded run with the full outcome…
//! let outcome = scenario.run(42)?;
//! assert!(outcome.reached_agreement);
//! assert!(outcome.validity_holds());
//!
//! // …and the same point over a parallel seed batch.
//! let batch = scenario.batch(0..8).run()?;
//! assert!(batch.all_succeeded());
//! assert!(batch.mean_rounds().unwrap() >= 1.0);
//! # Ok::<(), mbaa::Error>(())
//! ```
//!
//! # Workspace layout
//!
//! This facade re-exports the public API of every workspace crate so
//! downstream users only need a single dependency:
//!
//! * [`types`] — values, multisets, rounds, fault states and models.
//! * [`net`] — the synchronous round-based network substrate.
//! * [`msr`] — the MSR algorithm family and convergence analysis.
//! * [`mixed`] — the static Mixed-Mode fault model baseline.
//! * [`adversary`] — mobile agents: mobility and corruption strategies.
//! * [`core`] — the protocol engine, Table 1 mapping, Table 2 bounds, and
//!   Theorems 3–6 lower-bound scenarios.
//! * [`obs`] — deterministic run telemetry (the [`Observer`] sink, the
//!   metrics registry) and the sanctioned wall-clock phase profiler.
//! * [`sim`] — the lowered experiment forms, statistics, and report tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prelude;
mod runner;
mod scenario;

pub use runner::{
    adversary_ablation, mobile_vs_static, stream_segments, stream_segments_metrics, AblationPoint,
    BatchOutcome, EquivalencePoint, Runner, SeededRun, Sweep, SweepPoint, SweepSummary,
};
pub use scenario::Scenario;

/// Foundation types (re-export of [`mbaa_types`]).
pub use mbaa_types as types;

/// Synchronous round-based network substrate (re-export of [`mbaa_net`]).
pub use mbaa_net as net;

/// MSR algorithm family (re-export of [`mbaa_msr`]).
pub use mbaa_msr as msr;

/// Static Mixed-Mode fault model (re-export of [`mbaa_mixed`]).
pub use mbaa_mixed as mixed;

/// Mobile Byzantine adversary (re-export of [`mbaa_adversary`]).
pub use mbaa_adversary as adversary;

/// Protocol engine, mapping, bounds, and lower bounds (re-export of
/// [`mbaa_core`]).
pub use mbaa_core as core;

/// Deterministic run telemetry and sanctioned phase profiling (re-export
/// of [`mbaa_obs`]).
pub use mbaa_obs as obs;

/// Experiment harness (re-export of [`mbaa_sim`]).
pub use mbaa_sim as sim;

pub use mbaa_adversary::{CorruptionStrategy, MobileAdversary, MobilityStrategy};
pub use mbaa_core::{
    BatchEngine, BatchLane, MobileEngine, MobileRunOutcome, Observe, ProtocolConfig,
    ProtocolConfigBuilder, RoundSnapshot,
};
pub use mbaa_msr::{MedianVoting, MsrFunction, Reduction, Selection, VotingFunction};
pub use mbaa_net::{
    Adjacency, DeliveryMatrix, DirectedAdjacency, DisconnectionPolicy, LinkFaultPlan, Outbox,
    RoundDelivery, SyncNetwork, Topology, TopologySchedule,
};
pub use mbaa_obs::{
    ConvergenceEvent, Event, EventLog, Histogram, MetricsRegistry, NoopObserver, Observer, Phase,
    RoundEvent, RunEndEvent, Tee,
};
pub use mbaa_sim::{
    run_experiment, run_experiment_metrics, run_experiment_with, ExperimentConfig,
    ExperimentResult, RunSummary, Workload,
};
pub use mbaa_types::{
    Epsilon, Error, FaultCounts, FaultState, Interval, MixedFaultClass, MobileModel, ProcessId,
    ProcessSet, Result, Round, Value, ValueMultiset,
};
