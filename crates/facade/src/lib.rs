//! # mbaa — Approximate Agreement under Mobile Byzantine Faults
//!
//! A reproduction of *"Approximate Agreement under Mobile Byzantine Faults"*
//! (Bonomi, Del Pozzo, Potop-Butucaru, Tixeuil — ICDCS 2016,
//! arXiv:1604.03871) as a Rust library: the MSR (Mean-Subsequence-Reduce)
//! family of approximate agreement algorithms running on a synchronous
//! message-passing simulator under all four mobile Byzantine fault models,
//! together with the Mobile-to-Mixed-Mode mapping, the replica bounds, and
//! the lower-bound constructions of the paper.
//!
//! This facade crate re-exports the public API of every workspace crate so
//! downstream users only need a single dependency:
//!
//! * [`types`] — values, multisets, rounds, fault states and models.
//! * [`net`] — the synchronous round-based network substrate.
//! * [`msr`] — the MSR algorithm family and convergence analysis.
//! * [`mixed`] — the static Mixed-Mode fault model baseline.
//! * [`adversary`] — mobile agents: mobility and corruption strategies.
//! * [`core`] — the protocol engine, Table 1 mapping, Table 2 bounds, and
//!   Theorems 3–6 lower-bound scenarios.
//! * [`sim`] — seeded experiments, sweeps, statistics, and report tables.
//!
//! The most common entry points are re-exported at the crate root.
//!
//! # Quickstart
//!
//! ```
//! use mbaa::{MobileEngine, MobileModel, ProtocolConfig, Value};
//!
//! // 9 sensors, 2 mobile Byzantine agents, Garay's model (n > 4f).
//! let config = ProtocolConfig::builder(MobileModel::Garay, 9, 2)
//!     .epsilon(1e-3)
//!     .seed(42)
//!     .build()?;
//!
//! let readings: Vec<Value> = (0..9).map(|i| Value::new(20.0 + i as f64 * 0.1)).collect();
//! let outcome = MobileEngine::new(config).run(&readings)?;
//!
//! assert!(outcome.reached_agreement);
//! assert!(outcome.validity_holds());
//! # Ok::<(), mbaa::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Foundation types (re-export of [`mbaa_types`]).
pub use mbaa_types as types;

/// Synchronous round-based network substrate (re-export of [`mbaa_net`]).
pub use mbaa_net as net;

/// MSR algorithm family (re-export of [`mbaa_msr`]).
pub use mbaa_msr as msr;

/// Static Mixed-Mode fault model (re-export of [`mbaa_mixed`]).
pub use mbaa_mixed as mixed;

/// Mobile Byzantine adversary (re-export of [`mbaa_adversary`]).
pub use mbaa_adversary as adversary;

/// Protocol engine, mapping, bounds, and lower bounds (re-export of
/// [`mbaa_core`]).
pub use mbaa_core as core;

/// Experiment harness (re-export of [`mbaa_sim`]).
pub use mbaa_sim as sim;

pub use mbaa_adversary::{CorruptionStrategy, MobileAdversary, MobilityStrategy};
pub use mbaa_core::{
    Configuration, MobileEngine, MobileRunOutcome, ProtocolConfig, ProtocolConfigBuilder,
};
pub use mbaa_msr::{MedianVoting, MsrFunction, Reduction, Selection, VotingFunction};
pub use mbaa_net::{Outbox, RoundDelivery, SyncNetwork};
pub use mbaa_sim::{run_experiment, ExperimentConfig, ExperimentResult, Workload};
pub use mbaa_types::{
    Epsilon, Error, FaultCounts, FaultState, Interval, MixedFaultClass, MobileModel, ProcessId,
    ProcessSet, Result, Round, Value, ValueMultiset,
};
