//! Finite real values and agreement tolerances.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A finite real value proposed, voted, or decided by a process.
///
/// Approximate agreement operates on real numbers; `Value` wraps an `f64`
/// while guaranteeing *finiteness* (no NaN, no infinities), which gives it a
/// total order and makes multiset reduction deterministic.
///
/// # Example
///
/// ```
/// use mbaa_types::Value;
///
/// let a = Value::new(0.25);
/// let b = Value::new(0.75);
/// assert!(a < b);
/// assert_eq!(a.midpoint(b), Value::new(0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Value(f64);

impl Value {
    /// The value `0.0`.
    pub const ZERO: Value = Value(0.0);
    /// The value `1.0`.
    pub const ONE: Value = Value(1.0);

    /// Creates a value from a finite `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is NaN or infinite. Use [`Value::try_new`] for a
    /// fallible constructor.
    #[must_use]
    pub fn new(raw: f64) -> Self {
        Self::try_new(raw).expect("Value must be finite")
    }

    /// Creates a value from a finite `f64`, returning `None` when `raw` is
    /// NaN or infinite.
    #[must_use]
    pub fn try_new(raw: f64) -> Option<Self> {
        raw.is_finite().then_some(Value(raw))
    }

    /// Returns the underlying `f64`.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Returns the absolute value.
    #[must_use]
    pub fn abs(self) -> Value {
        Value(self.0.abs())
    }

    /// Returns the absolute difference `|self - other|`.
    #[must_use]
    pub fn distance(self, other: Value) -> f64 {
        (self.0 - other.0).abs()
    }

    /// Returns the midpoint `(self + other) / 2`.
    #[must_use]
    pub fn midpoint(self, other: Value) -> Value {
        Value(self.0 / 2.0 + other.0 / 2.0)
    }

    /// Returns the smaller of two values.
    #[must_use]
    pub fn min(self, other: Value) -> Value {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two values.
    #[must_use]
    pub fn max(self, other: Value) -> Value {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Clamps this value into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn clamp(self, lo: Value, hi: Value) -> Value {
        assert!(lo <= hi, "clamp requires lo <= hi");
        self.max(lo).min(hi)
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::ZERO
    }
}

impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        // Finiteness is enforced at construction, so partial_cmp never
        // fails; total_cmp is not used because it would order -0.0 < 0.0
        // and change sort permutations the seeded tests pin down.
        self.0
            // mbaa: allow(determinism/stable-sort, construction invariant makes the partial order total)
            .partial_cmp(&other.0)
            .expect("Value is always finite and therefore totally ordered")
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<Value> for f64 {
    fn from(v: Value) -> f64 {
        v.0
    }
}

impl Add for Value {
    type Output = Value;

    fn add(self, rhs: Value) -> Value {
        Value::new(self.0 + rhs.0)
    }
}

impl Sub for Value {
    type Output = Value;

    fn sub(self, rhs: Value) -> Value {
        Value::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Value {
    type Output = Value;

    fn mul(self, rhs: f64) -> Value {
        Value::new(self.0 * rhs)
    }
}

impl Div<f64> for Value {
    type Output = Value;

    fn div(self, rhs: f64) -> Value {
        Value::new(self.0 / rhs)
    }
}

impl Neg for Value {
    type Output = Value;

    fn neg(self) -> Value {
        Value(-self.0)
    }
}

/// The agreement tolerance `ε > 0` of approximate agreement.
///
/// Two decided values `u`, `v` satisfy ε-agreement when `|u - v| ≤ ε`.
///
/// # Example
///
/// ```
/// use mbaa_types::{Epsilon, Value};
///
/// let eps = Epsilon::new(0.01);
/// assert!(eps.within(Value::new(0.500), Value::new(0.509)));
/// assert!(!eps.within(Value::new(0.0), Value::new(1.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Creates a tolerance from a strictly positive finite `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is not finite or not strictly positive. Use
    /// [`Epsilon::try_new`] for a fallible constructor.
    #[must_use]
    pub fn new(raw: f64) -> Self {
        Self::try_new(raw).expect("Epsilon must be finite and > 0")
    }

    /// Creates a tolerance, returning `None` unless `raw` is finite and
    /// strictly positive.
    #[must_use]
    pub fn try_new(raw: f64) -> Option<Self> {
        (raw.is_finite() && raw > 0.0).then_some(Epsilon(raw))
    }

    /// Returns the underlying tolerance.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Returns `true` when `a` and `b` are within ε of each other.
    #[must_use]
    pub fn within(self, a: Value, b: Value) -> bool {
        a.distance(b) <= self.0
    }

    /// Returns `true` when the given diameter is within ε.
    #[must_use]
    pub fn covers_diameter(self, diameter: f64) -> bool {
        diameter <= self.0
    }
}

impl Default for Epsilon {
    fn default() -> Self {
        Epsilon(1e-6)
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_rejects_nan_and_infinity() {
        assert!(Value::try_new(f64::NAN).is_none());
        assert!(Value::try_new(f64::INFINITY).is_none());
        assert!(Value::try_new(f64::NEG_INFINITY).is_none());
        assert!(Value::try_new(0.0).is_some());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn value_new_panics_on_nan() {
        let _ = Value::new(f64::NAN);
    }

    #[test]
    fn value_total_order() {
        let mut vs = vec![Value::new(3.0), Value::new(-1.0), Value::new(0.5)];
        vs.sort_unstable();
        assert_eq!(vs, vec![Value::new(-1.0), Value::new(0.5), Value::new(3.0)]);
    }

    #[test]
    fn value_arithmetic() {
        let a = Value::new(2.0);
        let b = Value::new(0.5);
        assert_eq!(a + b, Value::new(2.5));
        assert_eq!(a - b, Value::new(1.5));
        assert_eq!(a * 3.0, Value::new(6.0));
        assert_eq!(a / 4.0, Value::new(0.5));
        assert_eq!(-a, Value::new(-2.0));
        assert_eq!(a.distance(b), 1.5);
        assert_eq!(a.midpoint(b), Value::new(1.25));
    }

    #[test]
    fn value_min_max_clamp() {
        let a = Value::new(2.0);
        let b = Value::new(5.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Value::new(7.0).clamp(a, b), b);
        assert_eq!(Value::new(1.0).clamp(a, b), a);
        assert_eq!(Value::new(3.0).clamp(a, b), Value::new(3.0));
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn value_clamp_panics_on_inverted_bounds() {
        let _ = Value::new(0.0).clamp(Value::new(2.0), Value::new(1.0));
    }

    #[test]
    fn value_midpoint_avoids_overflow() {
        let a = Value::new(f64::MAX);
        let b = Value::new(f64::MAX);
        assert_eq!(a.midpoint(b), a);
    }

    #[test]
    fn epsilon_rejects_non_positive() {
        assert!(Epsilon::try_new(0.0).is_none());
        assert!(Epsilon::try_new(-1.0).is_none());
        assert!(Epsilon::try_new(f64::NAN).is_none());
        assert!(Epsilon::try_new(1e-9).is_some());
    }

    #[test]
    fn epsilon_within() {
        let eps = Epsilon::new(0.1);
        assert!(eps.within(Value::new(1.0), Value::new(1.05)));
        assert!(eps.within(Value::new(1.0), Value::new(1.0625)));
        assert!(!eps.within(Value::new(1.0), Value::new(1.11)));
        assert!(eps.covers_diameter(0.1));
        assert!(!eps.covers_diameter(0.2));
    }

    #[test]
    fn display_round_trips_reasonably() {
        assert_eq!(Value::new(1.5).to_string(), "1.5");
        assert_eq!(Epsilon::new(0.25).to_string(), "0.25");
    }
}
