//! Error types shared across the workspace.

use std::fmt;

use crate::{MobileModel, ProcessId, Round};

/// A specialized `Result` type for mbaa operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while configuring or running an agreement protocol.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The system has too few processes for the requested number of mobile
    /// Byzantine agents under the given model.
    InsufficientProcesses {
        /// The model whose bound is violated.
        model: MobileModel,
        /// The number of processes configured.
        n: usize,
        /// The number of mobile agents configured.
        f: usize,
        /// The minimum number of processes the model requires.
        required: usize,
    },
    /// The system has too few processes for the requested static mixed-mode
    /// fault counts (`n <= 3a + 2s + b`).
    InsufficientProcessesMixed {
        /// The number of processes configured.
        n: usize,
        /// The minimum number of processes the fault counts require.
        required: usize,
    },
    /// A process index is outside the universe `[0, n)`.
    UnknownProcess {
        /// The offending process.
        process: ProcessId,
        /// The number of processes in the system.
        n: usize,
    },
    /// The configured network topology is not connected: some process pair
    /// has no path at all, so no agreement protocol can relate their
    /// values.
    DisconnectedTopology {
        /// The number of processes in the system.
        n: usize,
        /// The number of connected components the graph splits into.
        components: usize,
    },
    /// The configured network topology is too sparse for the model's
    /// resilience requirement: the worst-placed process hears fewer
    /// processes per round (its closed neighbourhood) than the model's
    /// replica bound `n_Mi` demands — the degree-dependent analogue of the
    /// global `n > c·f` checks.
    InsufficientConnectivity {
        /// The model whose bound is violated.
        model: MobileModel,
        /// The number of mobile agents configured.
        f: usize,
        /// The smallest closed neighbourhood (degree + 1) in the graph.
        min_neighborhood: usize,
        /// The processes-per-neighbourhood the model requires.
        required: usize,
    },
    /// A dynamic topology schedule realized a disconnected communication
    /// graph in some round, under the reject disconnection policy. Unlike
    /// [`Error::DisconnectedTopology`] (a *static* graph with permanent
    /// components, never tolerated), this is a transient, per-round
    /// condition a churn experiment may instead choose to record.
    DisconnectedRound {
        /// The round whose realized graph was disconnected.
        round: Round,
        /// The number of connected components the graph split into.
        components: usize,
    },
    /// The number of initial values does not match the number of processes.
    WrongInputCount {
        /// Number of initial values provided.
        provided: usize,
        /// Number of processes expected.
        expected: usize,
    },
    /// The protocol did not reach ε-agreement within the allowed rounds.
    DidNotConverge {
        /// The last round executed.
        last_round: Round,
        /// The diameter of non-faulty values at that round.
        diameter: f64,
        /// The agreement tolerance requested.
        epsilon: f64,
    },
    /// An invalid parameter was supplied (message describes which).
    InvalidParameter(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InsufficientProcesses {
                model,
                n,
                f: agents,
                required,
            } => write!(
                f,
                "{model} requires more than {} processes for f={agents} agents, got n={n} (need n >= {required})",
                required - 1
            ),
            Error::InsufficientProcessesMixed { n, required } => write!(
                f,
                "mixed-mode fault counts require n >= {required}, got n={n}"
            ),
            Error::DisconnectedTopology { n, components } => write!(
                f,
                "topology over {n} processes is disconnected ({components} components); \
                 agreement requires a connected communication graph"
            ),
            Error::InsufficientConnectivity {
                model,
                f: agents,
                min_neighborhood,
                required,
            } => write!(
                f,
                "{model} with f={agents} agents requires every process to hear at least \
                 {required} processes per round, but the sparsest neighbourhood holds only \
                 {min_neighborhood}"
            ),
            Error::DisconnectedRound { round, components } => write!(
                f,
                "realized topology at {round} is disconnected ({components} components) \
                 under the reject disconnection policy"
            ),
            Error::UnknownProcess { process, n } => {
                write!(f, "process {process} is outside the universe of {n} processes")
            }
            Error::WrongInputCount { provided, expected } => write!(
                f,
                "expected {expected} initial values (one per process), got {provided}"
            ),
            Error::DidNotConverge {
                last_round,
                diameter,
                epsilon,
            } => write!(
                f,
                "did not reach epsilon-agreement by {last_round}: diameter {diameter} > epsilon {epsilon}"
            ),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_usefully() {
        let e = Error::InsufficientProcesses {
            model: MobileModel::Garay,
            n: 8,
            f: 2,
            required: 9,
        };
        let msg = e.to_string();
        assert!(msg.contains("Garay"));
        assert!(msg.contains("n=8"));

        let e = Error::InsufficientProcessesMixed { n: 5, required: 7 };
        assert!(e.to_string().contains("n >= 7"));

        let e = Error::UnknownProcess {
            process: ProcessId::new(9),
            n: 4,
        };
        assert!(e.to_string().contains("p9"));

        let e = Error::WrongInputCount {
            provided: 3,
            expected: 5,
        };
        assert!(e.to_string().contains("5"));

        let e = Error::DidNotConverge {
            last_round: Round::new(10),
            diameter: 0.5,
            epsilon: 0.001,
        };
        assert!(e.to_string().contains("r10"));

        let e = Error::InvalidParameter("epsilon must be positive".into());
        assert!(e.to_string().contains("epsilon"));

        let e = Error::DisconnectedTopology {
            n: 6,
            components: 2,
        };
        assert!(e.to_string().contains("2 components"));

        let e = Error::InsufficientConnectivity {
            model: MobileModel::Garay,
            f: 1,
            min_neighborhood: 3,
            required: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("Garay") && msg.contains("at least 5") && msg.contains("only 3"));

        let e = Error::DisconnectedRound {
            round: Round::new(4),
            components: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("r4") && msg.contains("3 components"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<Error>();
    }
}
