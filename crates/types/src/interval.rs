//! Closed real intervals: the range `ρ(V)` of a multiset of values.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Value;

/// A closed interval `[lo, hi]` of real values.
///
/// The paper writes `ρ(V) = [min(V), max(V)]` for the range of a multiset
/// `V` and uses containment in `ρ(U)` (the range of correct values) as the
/// validity condition of approximate agreement.
///
/// # Example
///
/// ```
/// use mbaa_types::{Interval, Value};
///
/// let range = Interval::new(Value::new(0.0), Value::new(1.0));
/// assert!(range.contains(Value::new(0.5)));
/// assert_eq!(range.diameter(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    lo: Value,
    hi: Value,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: Value, hi: Value) -> Self {
        assert!(lo <= hi, "interval requires lo <= hi");
        Interval { lo, hi }
    }

    /// Creates the degenerate interval `[v, v]`.
    #[must_use]
    pub fn point(v: Value) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Creates the smallest interval containing every value of the iterator,
    /// or `None` when the iterator is empty.
    pub fn hull<I: IntoIterator<Item = Value>>(values: I) -> Option<Self> {
        let mut it = values.into_iter();
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some(Interval { lo, hi })
    }

    /// The lower endpoint.
    #[must_use]
    pub fn lo(&self) -> Value {
        self.lo
    }

    /// The upper endpoint.
    #[must_use]
    pub fn hi(&self) -> Value {
        self.hi
    }

    /// The diameter `hi - lo` (written `δ` in the paper).
    #[must_use]
    pub fn diameter(&self) -> f64 {
        self.hi.get() - self.lo.get()
    }

    /// The midpoint of the interval.
    #[must_use]
    pub fn midpoint(&self) -> Value {
        self.lo.midpoint(self.hi)
    }

    /// Returns `true` when `v ∈ [lo, hi]`.
    #[must_use]
    pub fn contains(&self, v: Value) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Returns `true` when `other ⊆ self`.
    #[must_use]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Returns the smallest interval containing both `self` and `other`.
    #[must_use]
    pub fn union(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Returns the intersection of `self` and `other`, or `None` when they
    /// are disjoint.
    #[must_use]
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Grows the interval by `margin` on both sides.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is negative or not finite.
    #[must_use]
    pub fn expanded(&self, margin: f64) -> Interval {
        assert!(
            margin.is_finite() && margin >= 0.0,
            "margin must be finite and >= 0"
        );
        Interval {
            lo: Value::new(self.lo.get() - margin),
            hi: Value::new(self.hi.get() + margin),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(Value::new(lo), Value::new(hi))
    }

    #[test]
    fn construction_and_accessors() {
        let i = iv(-1.0, 3.0);
        assert_eq!(i.lo(), Value::new(-1.0));
        assert_eq!(i.hi(), Value::new(3.0));
        assert_eq!(i.diameter(), 4.0);
        assert_eq!(i.midpoint(), Value::new(1.0));
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_bounds_panic() {
        let _ = iv(1.0, 0.0);
    }

    #[test]
    fn point_interval_has_zero_diameter() {
        let p = Interval::point(Value::new(2.0));
        assert_eq!(p.diameter(), 0.0);
        assert!(p.contains(Value::new(2.0)));
        assert!(!p.contains(Value::new(2.1)));
    }

    #[test]
    fn hull_of_values() {
        let hull = Interval::hull([3.0, -2.0, 0.5].into_iter().map(Value::new)).unwrap();
        assert_eq!(hull, iv(-2.0, 3.0));
        assert!(Interval::hull(std::iter::empty()).is_none());
    }

    #[test]
    fn containment() {
        let outer = iv(0.0, 10.0);
        let inner = iv(2.0, 3.0);
        assert!(outer.contains_interval(&inner));
        assert!(!inner.contains_interval(&outer));
        assert!(outer.contains(Value::new(0.0)));
        assert!(outer.contains(Value::new(10.0)));
        assert!(!outer.contains(Value::new(10.000001)));
    }

    #[test]
    fn union_and_intersection() {
        let a = iv(0.0, 2.0);
        let b = iv(1.0, 5.0);
        assert_eq!(a.union(&b), iv(0.0, 5.0));
        assert_eq!(a.intersection(&b), Some(iv(1.0, 2.0)));

        let c = iv(10.0, 11.0);
        assert_eq!(a.intersection(&c), None);
        assert_eq!(a.union(&c), iv(0.0, 11.0));
    }

    #[test]
    fn expansion() {
        let a = iv(0.0, 1.0);
        assert_eq!(a.expanded(0.5), iv(-0.5, 1.5));
        assert_eq!(a.expanded(0.0), a);
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn negative_margin_panics() {
        let _ = iv(0.0, 1.0).expanded(-0.1);
    }

    #[test]
    fn display() {
        assert_eq!(iv(0.0, 1.5).to_string(), "[0, 1.5]");
    }
}
