//! Multisets of values, the object every voting round manipulates.

use std::fmt;
use std::iter::FromIterator;

use serde::{Deserialize, Serialize};

use crate::{Interval, Value};

/// A multiset of [`Value`]s, kept sorted in non-decreasing order.
///
/// The paper manipulates the multiset `N_i` of values a non-faulty process
/// `p_i` receives in a round, with the operators `min`, `max`, the range
/// `ρ(V)`, and the diameter `δ(V)`. MSR algorithms also need order-based
/// reductions (dropping the `τ` smallest and largest elements), selection of
/// subsequences, and means — all of which this type provides.
///
/// # Example
///
/// ```
/// use mbaa_types::{Value, ValueMultiset};
///
/// let votes: ValueMultiset = [5.0, 1.0, 3.0, 100.0, -2.0]
///     .iter()
///     .copied()
///     .map(Value::new)
///     .collect();
///
/// assert_eq!(votes.len(), 5);
/// assert_eq!(votes.min(), Some(Value::new(-2.0)));
/// assert_eq!(votes.max(), Some(Value::new(100.0)));
///
/// // Drop the single smallest and largest element (τ = 1).
/// let reduced = votes.trimmed(1);
/// assert_eq!(reduced.as_slice(), &[Value::new(1.0), Value::new(3.0), Value::new(5.0)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ValueMultiset {
    // Invariant: always sorted in non-decreasing order.
    values: Vec<Value>,
}

impl ValueMultiset {
    /// Creates an empty multiset.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty multiset with room for `capacity` values.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        ValueMultiset {
            values: Vec::with_capacity(capacity),
        }
    }

    /// Creates a multiset from an unsorted vector of values.
    #[must_use]
    pub fn from_values(mut values: Vec<Value>) -> Self {
        // Values are totally ordered finite floats: an unstable comparator
        // sort is enough (equal values are interchangeable) and never
        // allocates, unlike the stable `sort_by` merge.
        values.sort_unstable_by(Value::cmp);
        ValueMultiset { values }
    }

    /// Empties the multiset, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.values.clear();
    }

    /// Replaces the contents with the values of `iter`, reusing the existing
    /// allocation: `clear` + `extend` + in-place unstable sort. This is the
    /// zero-allocation refill path of the protocol engine's per-round
    /// multiset scratch — once the buffer has grown to the universe size,
    /// refilling it performs no heap allocation at all.
    ///
    /// The result is bit-identical to building a fresh multiset with
    /// [`ValueMultiset::from_values`] over the same values.
    ///
    /// # Example
    ///
    /// ```
    /// use mbaa_types::{Value, ValueMultiset};
    ///
    /// let mut scratch = ValueMultiset::with_capacity(4);
    /// scratch.refill([3.0, 1.0, 2.0].map(Value::new));
    /// assert_eq!(scratch.as_slice(), &[Value::new(1.0), Value::new(2.0), Value::new(3.0)]);
    /// scratch.refill([5.0, 4.0].map(Value::new));
    /// assert_eq!(scratch.len(), 2);
    /// ```
    pub fn refill<I: IntoIterator<Item = Value>>(&mut self, iter: I) {
        self.values.clear();
        self.values.extend(iter);
        self.values.sort_unstable_by(Value::cmp);
    }

    /// Number of values (with multiplicity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when the multiset holds no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Inserts a value, keeping the multiset sorted.
    pub fn insert(&mut self, v: Value) {
        let idx = self.values.partition_point(|&x| x <= v);
        self.values.insert(idx, v);
    }

    /// Number of occurrences of `v`.
    #[must_use]
    pub fn count(&self, v: Value) -> usize {
        let start = self.values.partition_point(|&x| x < v);
        let end = self.values.partition_point(|&x| x <= v);
        end - start
    }

    /// The sorted values as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Value] {
        &self.values
    }

    /// Iterates over the sorted values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        self.values.iter().copied()
    }

    /// The minimum value, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<Value> {
        self.values.first().copied()
    }

    /// The maximum value, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<Value> {
        self.values.last().copied()
    }

    /// The range `ρ(V) = [min(V), max(V)]`, or `None` when empty.
    #[must_use]
    pub fn range(&self) -> Option<Interval> {
        Some(Interval::new(self.min()?, self.max()?))
    }

    /// The diameter `δ(V) = max(V) - min(V)`; `0.0` when empty.
    #[must_use]
    pub fn diameter(&self) -> f64 {
        match (self.min(), self.max()) {
            (Some(lo), Some(hi)) => hi.get() - lo.get(),
            _ => 0.0,
        }
    }

    /// The arithmetic mean, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<Value> {
        if self.values.is_empty() {
            return None;
        }
        let n = self.values.len() as f64;
        // Divide each term to stay finite even for very large magnitudes.
        let mean = self.values.iter().map(|v| v.get() / n).sum::<f64>();
        Some(Value::new(mean))
    }

    /// The median (midpoint of the two central elements for even sizes), or
    /// `None` when empty.
    #[must_use]
    pub fn median(&self) -> Option<Value> {
        if self.values.is_empty() {
            return None;
        }
        let n = self.values.len();
        if n % 2 == 1 {
            Some(self.values[n / 2])
        } else {
            Some(self.values[n / 2 - 1].midpoint(self.values[n / 2]))
        }
    }

    /// The `k`-th smallest value (0-based), or `None` when out of range.
    #[must_use]
    pub fn kth(&self, k: usize) -> Option<Value> {
        self.values.get(k).copied()
    }

    /// Returns a new multiset with the `tau` smallest and `tau` largest
    /// values removed (the *Reduce* step of MSR algorithms).
    ///
    /// When `2 * tau >= len`, the result is empty.
    #[must_use]
    pub fn trimmed(&self, tau: usize) -> ValueMultiset {
        if 2 * tau >= self.values.len() {
            return ValueMultiset::new();
        }
        ValueMultiset {
            values: self.values[tau..self.values.len() - tau].to_vec(),
        }
    }

    /// Returns a new multiset keeping every `step`-th value starting from the
    /// first (the *Select* step of MSR algorithms). `step` must be at least 1.
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    #[must_use]
    pub fn selected(&self, step: usize) -> ValueMultiset {
        assert!(step >= 1, "selection step must be >= 1");
        ValueMultiset {
            values: self.values.iter().copied().step_by(step).collect(),
        }
    }

    /// Returns the sub-multiset of values contained in `interval`.
    #[must_use]
    pub fn restricted_to(&self, interval: &Interval) -> ValueMultiset {
        ValueMultiset {
            values: self
                .values
                .iter()
                .copied()
                .filter(|v| interval.contains(*v))
                .collect(),
        }
    }

    /// Merges two multisets.
    #[must_use]
    pub fn merged(&self, other: &ValueMultiset) -> ValueMultiset {
        let mut values = Vec::with_capacity(self.len() + other.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        ValueMultiset::from_values(values)
    }
}

impl FromIterator<Value> for ValueMultiset {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        ValueMultiset::from_values(iter.into_iter().collect())
    }
}

impl Extend<Value> for ValueMultiset {
    fn extend<T: IntoIterator<Item = Value>>(&mut self, iter: T) {
        self.values.extend(iter);
        self.values.sort_unstable_by(Value::cmp);
    }
}

impl IntoIterator for ValueMultiset {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.into_iter()
    }
}

impl<'a> IntoIterator for &'a ValueMultiset {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

impl fmt::Display for ValueMultiset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(vals: &[f64]) -> ValueMultiset {
        vals.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn construction_sorts_values() {
        let m = ms(&[3.0, 1.0, 2.0, 1.0]);
        assert_eq!(
            m.as_slice(),
            &[
                Value::new(1.0),
                Value::new(1.0),
                Value::new(2.0),
                Value::new(3.0)
            ]
        );
    }

    #[test]
    fn insert_keeps_sorted_and_counts_multiplicity() {
        let mut m = ms(&[1.0, 3.0]);
        m.insert(Value::new(2.0));
        m.insert(Value::new(2.0));
        assert_eq!(m.len(), 4);
        assert_eq!(m.count(Value::new(2.0)), 2);
        assert_eq!(m.count(Value::new(5.0)), 0);
        assert!(m.as_slice().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn min_max_range_diameter() {
        let m = ms(&[2.0, -1.0, 7.0]);
        assert_eq!(m.min(), Some(Value::new(-1.0)));
        assert_eq!(m.max(), Some(Value::new(7.0)));
        assert_eq!(m.diameter(), 8.0);
        let r = m.range().unwrap();
        assert_eq!(r.lo(), Value::new(-1.0));
        assert_eq!(r.hi(), Value::new(7.0));

        let empty = ValueMultiset::new();
        assert_eq!(empty.min(), None);
        assert_eq!(empty.range(), None);
        assert_eq!(empty.diameter(), 0.0);
    }

    #[test]
    fn mean_and_median() {
        let m = ms(&[1.0, 2.0, 3.0, 10.0]);
        assert_eq!(m.mean(), Some(Value::new(4.0)));
        assert_eq!(m.median(), Some(Value::new(2.5)));

        let odd = ms(&[5.0, 1.0, 3.0]);
        assert_eq!(odd.median(), Some(Value::new(3.0)));

        assert_eq!(ValueMultiset::new().mean(), None);
        assert_eq!(ValueMultiset::new().median(), None);
    }

    #[test]
    fn mean_is_stable_for_large_values() {
        let m = ms(&[f64::MAX / 2.0, f64::MAX / 2.0]);
        assert_eq!(m.mean(), Some(Value::new(f64::MAX / 2.0)));
    }

    #[test]
    fn trimming_drops_extremes() {
        let m = ms(&[0.0, 1.0, 2.0, 3.0, 100.0]);
        assert_eq!(m.trimmed(1).as_slice(), ms(&[1.0, 2.0, 3.0]).as_slice());
        assert_eq!(m.trimmed(2).as_slice(), ms(&[2.0]).as_slice());
        assert!(m.trimmed(3).is_empty());
        assert_eq!(m.trimmed(0), m);
    }

    #[test]
    fn selection_takes_every_step() {
        let m = ms(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.selected(2).as_slice(), ms(&[0.0, 2.0, 4.0]).as_slice());
        assert_eq!(m.selected(1), m);
    }

    #[test]
    #[should_panic(expected = "step")]
    fn selection_step_zero_panics() {
        let _ = ms(&[1.0]).selected(0);
    }

    #[test]
    fn restriction_and_merge() {
        let m = ms(&[0.0, 1.0, 2.0, 3.0]);
        let iv = Interval::new(Value::new(1.0), Value::new(2.5));
        assert_eq!(m.restricted_to(&iv).as_slice(), ms(&[1.0, 2.0]).as_slice());

        let merged = ms(&[0.0, 2.0]).merged(&ms(&[1.0, 3.0]));
        assert_eq!(merged.as_slice(), ms(&[0.0, 1.0, 2.0, 3.0]).as_slice());
    }

    #[test]
    fn kth_accessor() {
        let m = ms(&[4.0, 1.0, 3.0]);
        assert_eq!(m.kth(0), Some(Value::new(1.0)));
        assert_eq!(m.kth(2), Some(Value::new(4.0)));
        assert_eq!(m.kth(3), None);
    }

    #[test]
    fn extend_and_iterators() {
        let mut m = ms(&[2.0]);
        m.extend([Value::new(1.0), Value::new(3.0)]);
        assert_eq!(m.as_slice(), ms(&[1.0, 2.0, 3.0]).as_slice());

        let collected: Vec<Value> = m.iter().collect();
        assert_eq!(collected.len(), 3);
        let owned: Vec<Value> = m.clone().into_iter().collect();
        assert_eq!(owned, collected);
        let borrowed: Vec<&Value> = (&m).into_iter().collect();
        assert_eq!(borrowed.len(), 3);
    }

    #[test]
    fn display_formats_as_braced_list() {
        assert_eq!(ms(&[2.0, 1.0]).to_string(), "{1, 2}");
        assert_eq!(ValueMultiset::new().to_string(), "{}");
    }

    #[test]
    fn refill_reuses_the_buffer_and_matches_from_values() {
        let mut scratch = ValueMultiset::with_capacity(8);
        scratch.refill([4.0, 2.0, 4.0].map(Value::new));
        assert_eq!(scratch, ms(&[2.0, 4.0, 4.0]));
        // A shorter refill fully replaces the previous contents.
        scratch.refill([9.0].map(Value::new));
        assert_eq!(scratch, ms(&[9.0]));
        scratch.refill(std::iter::empty());
        assert!(scratch.is_empty());
        scratch.clear();
        assert!(scratch.is_empty());
    }

    /// Property battery (seeded random cases, proptest-style): the unstable
    /// comparator sort used by `from_values` and `refill` preserves exactly
    /// the sorted order and per-value multiplicity a stable reference sort
    /// produces.
    #[test]
    fn unstable_sort_preserves_order_and_multiplicity() {
        // SplitMix64: deterministic case generation without a dev-dependency.
        let mut state = 0x9E37_79B9_u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut scratch = ValueMultiset::new();
        for case in 0..200 {
            let len = (next() % 64) as usize;
            // A coarse value grid on purpose: ties are the interesting case
            // for sort stability.
            let values: Vec<Value> = (0..len)
                .map(|_| Value::new((next() % 16) as f64 - 8.0))
                .collect();

            let mut reference = values.clone();
            // mbaa: allow(determinism/stable-sort, intentional stable reference the battery checks unstable refill against)
            reference.sort_by(Value::cmp);

            let built = ValueMultiset::from_values(values.clone());
            assert_eq!(built.as_slice(), reference.as_slice(), "case {case}");
            scratch.refill(values.iter().copied());
            assert_eq!(scratch.as_slice(), reference.as_slice(), "case {case}");
            for &v in &reference {
                assert_eq!(
                    built.count(v),
                    reference.iter().filter(|&&r| r == v).count(),
                    "case {case}: multiplicity of {v}"
                );
            }
        }
    }
}
