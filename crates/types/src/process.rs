//! Process identities and sets of processes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The identity of a process `p_i`, `0 <= i < n`.
///
/// The paper indexes processes `p_1 … p_n`; we use 0-based indices internally
/// and format them 0-based as well.
///
/// # Example
///
/// ```
/// use mbaa_types::ProcessId;
///
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process identity from its index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        ProcessId(index)
    }

    /// The index of this process.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

impl From<ProcessId> for usize {
    fn from(id: ProcessId) -> usize {
        id.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A set of processes out of a universe of `n`, stored as a membership
/// bit-vector.
///
/// Used for the faulty set `B`, the cured set `T*`, and the correct set `C`
/// of each round.
///
/// # Example
///
/// ```
/// use mbaa_types::{ProcessId, ProcessSet};
///
/// let mut faulty = ProcessSet::empty(5);
/// faulty.insert(ProcessId::new(2));
/// assert!(faulty.contains(ProcessId::new(2)));
/// assert_eq!(faulty.len(), 1);
/// assert_eq!(faulty.complement().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcessSet {
    members: Vec<bool>,
}

impl ProcessSet {
    /// Creates an empty set over a universe of `n` processes.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        ProcessSet {
            members: vec![false; n],
        }
    }

    /// Creates the full set over a universe of `n` processes.
    #[must_use]
    pub fn full(n: usize) -> Self {
        ProcessSet {
            members: vec![true; n],
        }
    }

    /// Creates a set from the given member indices over a universe of `n`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn from_indices<I: IntoIterator<Item = usize>>(n: usize, indices: I) -> Self {
        let mut set = Self::empty(n);
        for i in indices {
            set.insert(ProcessId::new(i));
        }
        set
    }

    /// Size of the universe `n`.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.members.len()
    }

    /// Number of members of the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.iter().filter(|&&m| m).count()
    }

    /// Returns `true` when the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !self.members.iter().any(|&m| m)
    }

    /// Returns `true` when `p` belongs to the set.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    #[must_use]
    pub fn contains(&self, p: ProcessId) -> bool {
        self.members[p.index()]
    }

    /// Adds `p` to the set. Returns `true` when `p` was not already a member.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        let was = self.members[p.index()];
        self.members[p.index()] = true;
        !was
    }

    /// Removes `p` from the set. Returns `true` when `p` was a member.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        let was = self.members[p.index()];
        self.members[p.index()] = false;
        was
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.members.iter_mut().for_each(|m| *m = false);
    }

    /// Overwrites this set with the membership of `other`, reusing the
    /// existing allocation — the zero-allocation counterpart of
    /// `*self = other.clone()` for same-universe sets.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn copy_from(&mut self, other: &ProcessSet) {
        assert_eq!(self.universe(), other.universe(), "universe mismatch");
        self.members.copy_from_slice(&other.members);
    }

    /// Iterates over the members in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.members
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(ProcessId::new(i)))
    }

    /// The complement of the set within its universe.
    #[must_use]
    pub fn complement(&self) -> ProcessSet {
        ProcessSet {
            members: self.members.iter().map(|&m| !m).collect(),
        }
    }

    /// The union of two sets over the same universe.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn union(&self, other: &ProcessSet) -> ProcessSet {
        assert_eq!(self.universe(), other.universe(), "universe mismatch");
        ProcessSet {
            members: self
                .members
                .iter()
                .zip(&other.members)
                .map(|(&a, &b)| a || b)
                .collect(),
        }
    }

    /// The intersection of two sets over the same universe.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn intersection(&self, other: &ProcessSet) -> ProcessSet {
        assert_eq!(self.universe(), other.universe(), "universe mismatch");
        ProcessSet {
            members: self
                .members
                .iter()
                .zip(&other.members)
                .map(|(&a, &b)| a && b)
                .collect(),
        }
    }

    /// Returns `true` when the two sets share no member.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn is_disjoint(&self, other: &ProcessSet) -> bool {
        self.intersection(other).is_empty()
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_round_trips() {
        let p = ProcessId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(usize::from(p), 7);
        assert_eq!(ProcessId::from(7usize), p);
        assert_eq!(p.to_string(), "p7");
    }

    #[test]
    fn empty_and_full_sets() {
        let empty = ProcessSet::empty(4);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.universe(), 4);

        let full = ProcessSet::full(4);
        assert_eq!(full.len(), 4);
        assert_eq!(full.complement(), empty);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcessSet::empty(3);
        assert!(s.insert(ProcessId::new(1)));
        assert!(!s.insert(ProcessId::new(1)));
        assert!(s.contains(ProcessId::new(1)));
        assert!(!s.contains(ProcessId::new(0)));
        assert!(s.remove(ProcessId::new(1)));
        assert!(!s.remove(ProcessId::new(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn from_indices_and_iteration() {
        let s = ProcessSet::from_indices(5, [4, 0, 2]);
        let ids: Vec<usize> = s.iter().map(ProcessId::index).collect();
        assert_eq!(ids, vec![0, 2, 4]);
        assert_eq!(s.to_string(), "{p0, p2, p4}");
    }

    #[test]
    #[should_panic]
    fn out_of_universe_panics() {
        let s = ProcessSet::empty(2);
        let _ = s.contains(ProcessId::new(5));
    }

    #[test]
    fn set_algebra() {
        let a = ProcessSet::from_indices(6, [0, 1, 2]);
        let b = ProcessSet::from_indices(6, [2, 3]);
        assert_eq!(a.union(&b), ProcessSet::from_indices(6, [0, 1, 2, 3]));
        assert_eq!(a.intersection(&b), ProcessSet::from_indices(6, [2]));
        assert!(!a.is_disjoint(&b));
        assert!(a.is_disjoint(&ProcessSet::from_indices(6, [4, 5])));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mismatched_universe_panics() {
        let a = ProcessSet::empty(3);
        let b = ProcessSet::empty(4);
        let _ = a.union(&b);
    }

    #[test]
    fn clear_resets_membership() {
        let mut s = ProcessSet::from_indices(4, [1, 3]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.universe(), 4);
    }

    #[test]
    fn copy_from_overwrites_in_place() {
        let mut s = ProcessSet::from_indices(4, [0, 2]);
        s.copy_from(&ProcessSet::from_indices(4, [3]));
        assert_eq!(s, ProcessSet::from_indices(4, [3]));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn copy_from_rejects_mismatched_universe() {
        let mut s = ProcessSet::empty(3);
        s.copy_from(&ProcessSet::empty(4));
    }
}
