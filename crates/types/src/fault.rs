//! Fault states, mobile Byzantine models, and Mixed-Mode fault classes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The failure state of a process in a given round of a mobile computation.
///
/// * `Faulty` — a mobile Byzantine agent currently occupies the process.
/// * `Cured` — the agent occupied the process in the previous round and has
///   just left; the local state may still be corrupted.
/// * `Correct` — neither faulty nor cured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultState {
    /// The process follows its specification and its state is intact.
    #[default]
    Correct,
    /// The Byzantine agent left at the start of this round; the state may be
    /// corrupted but the process runs the correct code.
    Cured,
    /// A Byzantine agent occupies the process; behaviour is arbitrary.
    Faulty,
}

impl FaultState {
    /// Returns `true` for [`FaultState::Correct`].
    #[must_use]
    pub fn is_correct(self) -> bool {
        matches!(self, FaultState::Correct)
    }

    /// Returns `true` for [`FaultState::Cured`].
    #[must_use]
    pub fn is_cured(self) -> bool {
        matches!(self, FaultState::Cured)
    }

    /// Returns `true` for [`FaultState::Faulty`].
    #[must_use]
    pub fn is_faulty(self) -> bool {
        matches!(self, FaultState::Faulty)
    }

    /// Returns `true` when the process is *non-faulty* (correct or cured) —
    /// the set the agreement properties quantify over.
    #[must_use]
    pub fn is_non_faulty(self) -> bool {
        !self.is_faulty()
    }
}

impl fmt::Display for FaultState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultState::Correct => "correct",
            FaultState::Cured => "cured",
            FaultState::Faulty => "faulty",
        };
        f.write_str(name)
    }
}

/// The four synchronous Mobile Byzantine Fault models considered by the
/// paper.
///
/// They differ in *when* agents move and in whether a cured process is aware
/// of its own state:
///
/// | Model | Paper name | Agents move | Cured awareness | Cured behaviour |
/// |---|---|---|---|---|
/// | M1 | Garay | between rounds | aware | stays silent (benign) |
/// | M2 | Bonnet et al. | between rounds | unaware | sends corrupted state to all (symmetric) |
/// | M3 | Sasaki et al. | between rounds | unaware | poisoned queue: acts Byzantine one more round (asymmetric) |
/// | M4 | Buhrman | with the messages | aware | no cured senders during the send phase |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MobileModel {
    /// (M1) Garay's model: cured processes detect their state and stay
    /// silent for one round. Requires `n > 4f`.
    Garay,
    /// (M2) Bonnet et al.'s model: cured processes are unaware but send the
    /// same (possibly corrupted) value to everyone. Requires `n > 5f`.
    Bonnet,
    /// (M3) Sasaki et al.'s model: cured processes are unaware and the agent
    /// leaves a poisoned outgoing queue, so they behave asymmetrically for
    /// one extra round. Requires `n > 6f`.
    Sasaki,
    /// (M4) Buhrman's model: agents move together with the messages, so the
    /// send phase sees exactly `f` asymmetric senders. Requires `n > 3f`.
    Buhrman,
}

impl MobileModel {
    /// All models, in the paper's M1–M4 order.
    pub const ALL: [MobileModel; 4] = [
        MobileModel::Garay,
        MobileModel::Bonnet,
        MobileModel::Sasaki,
        MobileModel::Buhrman,
    ];

    /// The paper's short name (M1–M4) for the model.
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            MobileModel::Garay => "M1",
            MobileModel::Bonnet => "M2",
            MobileModel::Sasaki => "M3",
            MobileModel::Buhrman => "M4",
        }
    }

    /// Returns `true` when a cured process is aware of its own cured state
    /// (Garay, Buhrman).
    #[must_use]
    pub fn cured_is_aware(self) -> bool {
        matches!(self, MobileModel::Garay | MobileModel::Buhrman)
    }

    /// Returns `true` when agents move together with protocol messages
    /// rather than between rounds (Buhrman).
    #[must_use]
    pub fn agents_move_with_messages(self) -> bool {
        matches!(self, MobileModel::Buhrman)
    }

    /// The multiplier `c` of the resilience bound `n > c·f` for this model
    /// (Table 2 of the paper).
    #[must_use]
    pub fn bound_multiplier(self) -> usize {
        match self {
            MobileModel::Garay => 4,
            MobileModel::Bonnet => 5,
            MobileModel::Sasaki => 6,
            MobileModel::Buhrman => 3,
        }
    }

    /// The largest number of processes for which Approximate Agreement is
    /// *impossible* with `f` agents, i.e. `c·f` (Theorems 3–6).
    #[must_use]
    pub fn impossibility_threshold(self, f: usize) -> usize {
        self.bound_multiplier() * f
    }

    /// The minimum number of processes `n` that satisfies the model's bound
    /// `n > c·f`, i.e. `c·f + 1` (Table 2).
    #[must_use]
    pub fn required_processes(self, f: usize) -> usize {
        self.impossibility_threshold(f) + 1
    }

    /// The Mixed-Mode fault class exhibited by a *cured* process under this
    /// model during the send phase (Table 1), or `None` when the model never
    /// has cured senders (Buhrman).
    #[must_use]
    pub fn cured_fault_class(self) -> Option<MixedFaultClass> {
        match self {
            MobileModel::Garay => Some(MixedFaultClass::Benign),
            MobileModel::Bonnet => Some(MixedFaultClass::Symmetric),
            MobileModel::Sasaki => Some(MixedFaultClass::Asymmetric),
            MobileModel::Buhrman => None,
        }
    }

    /// The Mixed-Mode fault counts `(a, s, b)` equivalent to `f` agents plus
    /// the worst-case set of cured processes under this model (Lemmas 1–4).
    #[must_use]
    pub fn mixed_fault_counts(self, f: usize) -> FaultCounts {
        let mut counts = FaultCounts {
            asymmetric: f,
            symmetric: 0,
            benign: 0,
        };
        match self.cured_fault_class() {
            Some(MixedFaultClass::Benign) => counts.benign = f,
            Some(MixedFaultClass::Symmetric) => counts.symmetric = f,
            Some(MixedFaultClass::Asymmetric) => counts.asymmetric += f,
            None => {}
        }
        counts
    }
}

impl fmt::Display for MobileModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MobileModel::Garay => "Garay (M1)",
            MobileModel::Bonnet => "Bonnet (M2)",
            MobileModel::Sasaki => "Sasaki (M3)",
            MobileModel::Buhrman => "Buhrman (M4)",
        };
        f.write_str(name)
    }
}

/// The three fault classes of the Kieckhafer–Azadmanesh Mixed-Mode model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MixedFaultClass {
    /// Self-incriminating fault, immediately evident to every non-faulty
    /// process (e.g. a crash or omitted reply in a synchronous system).
    Benign,
    /// The faulty behaviour is perceived identically by all non-faulty
    /// processes (e.g. the same wrong value broadcast to everyone).
    Symmetric,
    /// Classical Byzantine behaviour: different non-faulty processes may
    /// perceive different behaviours.
    Asymmetric,
}

impl MixedFaultClass {
    /// All fault classes, from weakest to strongest.
    pub const ALL: [MixedFaultClass; 3] = [
        MixedFaultClass::Benign,
        MixedFaultClass::Symmetric,
        MixedFaultClass::Asymmetric,
    ];

    /// The weight of this class in the resilience bound `n > 3a + 2s + b`.
    #[must_use]
    pub fn bound_weight(self) -> usize {
        match self {
            MixedFaultClass::Benign => 1,
            MixedFaultClass::Symmetric => 2,
            MixedFaultClass::Asymmetric => 3,
        }
    }
}

impl fmt::Display for MixedFaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MixedFaultClass::Benign => "benign",
            MixedFaultClass::Symmetric => "symmetric",
            MixedFaultClass::Asymmetric => "asymmetric",
        };
        f.write_str(name)
    }
}

/// The number of faults of each Mixed-Mode class present in a configuration.
///
/// # Example
///
/// ```
/// use mbaa_types::FaultCounts;
///
/// let counts = FaultCounts { asymmetric: 2, symmetric: 1, benign: 3 };
/// // n > 3a + 2s + b  =>  n > 11  =>  n >= 12
/// assert_eq!(counts.min_processes(), 12);
/// assert!(counts.tolerated_by(12));
/// assert!(!counts.tolerated_by(11));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Number of asymmetric (classical Byzantine) faults `a`.
    pub asymmetric: usize,
    /// Number of symmetric faults `s`.
    pub symmetric: usize,
    /// Number of benign faults `b`.
    pub benign: usize,
}

impl FaultCounts {
    /// A configuration with no faults at all.
    pub const NONE: FaultCounts = FaultCounts {
        asymmetric: 0,
        symmetric: 0,
        benign: 0,
    };

    /// Creates fault counts from `(a, s, b)`.
    #[must_use]
    pub fn new(asymmetric: usize, symmetric: usize, benign: usize) -> Self {
        FaultCounts {
            asymmetric,
            symmetric,
            benign,
        }
    }

    /// The total number of faulty processes `a + s + b`.
    #[must_use]
    pub fn total(self) -> usize {
        self.asymmetric + self.symmetric + self.benign
    }

    /// The value `3a + 2s + b` that the number of processes must exceed.
    #[must_use]
    pub fn bound(self) -> usize {
        3 * self.asymmetric + 2 * self.symmetric + self.benign
    }

    /// The smallest `n` satisfying `n > 3a + 2s + b`.
    #[must_use]
    pub fn min_processes(self) -> usize {
        self.bound() + 1
    }

    /// Returns `true` when `n` processes tolerate these fault counts, i.e.
    /// `n > 3a + 2s + b`.
    #[must_use]
    pub fn tolerated_by(self, n: usize) -> bool {
        n > self.bound()
    }

    /// The MSR reduction parameter `τ = a + s`: the number of extreme values
    /// dropped from each end of the received multiset. Benign faults are
    /// detected and excluded before reduction, so they do not contribute.
    #[must_use]
    pub fn reduction_tau(self) -> usize {
        self.asymmetric + self.symmetric
    }

    /// The number of faults of the given class.
    #[must_use]
    pub fn of_class(self, class: MixedFaultClass) -> usize {
        match class {
            MixedFaultClass::Asymmetric => self.asymmetric,
            MixedFaultClass::Symmetric => self.symmetric,
            MixedFaultClass::Benign => self.benign,
        }
    }

    /// Adds one fault of the given class.
    #[must_use]
    pub fn with_fault(mut self, class: MixedFaultClass) -> Self {
        match class {
            MixedFaultClass::Asymmetric => self.asymmetric += 1,
            MixedFaultClass::Symmetric => self.symmetric += 1,
            MixedFaultClass::Benign => self.benign += 1,
        }
        self
    }
}

impl fmt::Display for FaultCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "a={}, s={}, b={}",
            self.asymmetric, self.symmetric, self.benign
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_state_predicates() {
        assert!(FaultState::Correct.is_correct());
        assert!(FaultState::Correct.is_non_faulty());
        assert!(FaultState::Cured.is_cured());
        assert!(FaultState::Cured.is_non_faulty());
        assert!(FaultState::Faulty.is_faulty());
        assert!(!FaultState::Faulty.is_non_faulty());
        assert_eq!(FaultState::default(), FaultState::Correct);
    }

    #[test]
    fn model_bounds_match_table_2() {
        assert_eq!(MobileModel::Garay.bound_multiplier(), 4);
        assert_eq!(MobileModel::Bonnet.bound_multiplier(), 5);
        assert_eq!(MobileModel::Sasaki.bound_multiplier(), 6);
        assert_eq!(MobileModel::Buhrman.bound_multiplier(), 3);

        for model in MobileModel::ALL {
            for f in 1..=4 {
                assert_eq!(
                    model.required_processes(f),
                    model.bound_multiplier() * f + 1
                );
                assert_eq!(
                    model.impossibility_threshold(f),
                    model.bound_multiplier() * f
                );
            }
        }
    }

    #[test]
    fn cured_classes_match_table_1() {
        assert_eq!(
            MobileModel::Garay.cured_fault_class(),
            Some(MixedFaultClass::Benign)
        );
        assert_eq!(
            MobileModel::Bonnet.cured_fault_class(),
            Some(MixedFaultClass::Symmetric)
        );
        assert_eq!(
            MobileModel::Sasaki.cured_fault_class(),
            Some(MixedFaultClass::Asymmetric)
        );
        assert_eq!(MobileModel::Buhrman.cured_fault_class(), None);
    }

    #[test]
    fn cured_awareness() {
        assert!(MobileModel::Garay.cured_is_aware());
        assert!(!MobileModel::Bonnet.cured_is_aware());
        assert!(!MobileModel::Sasaki.cured_is_aware());
        assert!(MobileModel::Buhrman.cured_is_aware());
        assert!(MobileModel::Buhrman.agents_move_with_messages());
        assert!(!MobileModel::Garay.agents_move_with_messages());
    }

    #[test]
    fn mixed_counts_reproduce_lemmas_1_to_4() {
        // Lemma 1: a = f, b = f.
        assert_eq!(
            MobileModel::Garay.mixed_fault_counts(2),
            FaultCounts::new(2, 0, 2)
        );
        // Lemma 2: a = f, s = f.
        assert_eq!(
            MobileModel::Bonnet.mixed_fault_counts(2),
            FaultCounts::new(2, 2, 0)
        );
        // Lemma 3: a = 2f.
        assert_eq!(
            MobileModel::Sasaki.mixed_fault_counts(2),
            FaultCounts::new(4, 0, 0)
        );
        // Lemma 4: a = f.
        assert_eq!(
            MobileModel::Buhrman.mixed_fault_counts(2),
            FaultCounts::new(2, 0, 0)
        );
    }

    #[test]
    fn mixed_counts_bound_equals_model_bound() {
        // Substituting the mapping into n > 3a + 2s + b must give Table 2.
        for model in MobileModel::ALL {
            for f in 1..=5 {
                assert_eq!(
                    model.mixed_fault_counts(f).min_processes(),
                    model.required_processes(f),
                    "bound mismatch for {model} with f={f}"
                );
            }
        }
    }

    #[test]
    fn fault_counts_bound_and_tau() {
        let c = FaultCounts::new(1, 2, 3);
        assert_eq!(c.total(), 6);
        assert_eq!(c.bound(), 3 + 4 + 3);
        assert_eq!(c.min_processes(), 11);
        assert!(c.tolerated_by(11));
        assert!(!c.tolerated_by(10));
        assert_eq!(c.reduction_tau(), 3);
        assert_eq!(FaultCounts::NONE.min_processes(), 1);
    }

    #[test]
    fn fault_counts_class_accessors() {
        let c = FaultCounts::new(1, 2, 3);
        assert_eq!(c.of_class(MixedFaultClass::Asymmetric), 1);
        assert_eq!(c.of_class(MixedFaultClass::Symmetric), 2);
        assert_eq!(c.of_class(MixedFaultClass::Benign), 3);

        let c2 = FaultCounts::NONE
            .with_fault(MixedFaultClass::Asymmetric)
            .with_fault(MixedFaultClass::Benign);
        assert_eq!(c2, FaultCounts::new(1, 0, 1));
    }

    #[test]
    fn bound_weights() {
        assert_eq!(MixedFaultClass::Benign.bound_weight(), 1);
        assert_eq!(MixedFaultClass::Symmetric.bound_weight(), 2);
        assert_eq!(MixedFaultClass::Asymmetric.bound_weight(), 3);
    }

    #[test]
    fn display_strings() {
        assert_eq!(MobileModel::Garay.to_string(), "Garay (M1)");
        assert_eq!(MobileModel::Garay.short_name(), "M1");
        assert_eq!(MixedFaultClass::Asymmetric.to_string(), "asymmetric");
        assert_eq!(FaultState::Cured.to_string(), "cured");
        assert_eq!(FaultCounts::new(1, 2, 3).to_string(), "a=1, s=2, b=3");
    }
}
