//! Foundation types for the *mbaa* workspace — a reproduction of
//! "Approximate Agreement under Mobile Byzantine Faults" (Bonomi, Del Pozzo,
//! Potop-Butucaru, Tixeuil — ICDCS 2016).
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`Value`] — a finite, totally ordered real value voted by processes,
//!   and [`Epsilon`], the agreement tolerance.
//! * [`ValueMultiset`] — the multiset `N` of values a process gathers in a
//!   round, together with the range/diameter operators `ρ(V)` and `δ(V)`
//!   used throughout the paper.
//! * [`Interval`] — a closed real interval, the range of a multiset.
//! * [`ProcessId`] / [`ProcessSet`] — process identities `p_1 … p_n`.
//! * [`Round`] and [`Phase`] — the synchronous round structure
//!   (send / receive / compute).
//! * [`FaultState`] (correct / cured / faulty), the four mobile Byzantine
//!   models [`MobileModel`] (Garay, Bonnet, Sasaki, Buhrman), and the
//!   Mixed-Mode fault classes [`MixedFaultClass`] with their fault-count
//!   bookkeeping [`FaultCounts`] and the resilience bound `n > 3a + 2s + b`.
//!
//! # Example
//!
//! ```
//! use mbaa_types::{Value, ValueMultiset, MobileModel, FaultCounts};
//!
//! let votes: ValueMultiset = [1.0, 2.0, 100.0, 1.5].iter().copied().map(Value::new).collect();
//! assert_eq!(votes.diameter(), 99.0);
//!
//! // Garay's model needs n > 4f processes.
//! assert_eq!(MobileModel::Garay.required_processes(2), 9);
//!
//! // The mixed-mode bound n > 3a + 2s + b.
//! let counts = FaultCounts { asymmetric: 1, symmetric: 1, benign: 1 };
//! assert_eq!(counts.min_processes(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod fault;
mod interval;
mod multiset;
mod process;
mod round;
mod value;

pub use error::{Error, Result};
pub use fault::{FaultCounts, FaultState, MixedFaultClass, MobileModel};
pub use interval::Interval;
pub use multiset::ValueMultiset;
pub use process::{ProcessId, ProcessSet};
pub use round::{Phase, Round};
pub use value::{Epsilon, Value};
