//! Synchronous rounds and their phases.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A synchronous round index `r_0, r_1, …`.
///
/// # Example
///
/// ```
/// use mbaa_types::Round;
///
/// let r = Round::ZERO;
/// assert_eq!(r.next(), Round::new(1));
/// assert!(r.is_first());
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Round(u64);

impl Round {
    /// The first round `r_0`.
    pub const ZERO: Round = Round(0);

    /// Creates a round from its index.
    #[must_use]
    pub fn new(index: u64) -> Self {
        Round(index)
    }

    /// The index of this round.
    #[must_use]
    pub fn index(self) -> u64 {
        self.0
    }

    /// The next round.
    #[must_use]
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// The previous round, or `None` for `r_0`.
    #[must_use]
    pub fn previous(self) -> Option<Round> {
        self.0.checked_sub(1).map(Round)
    }

    /// Returns `true` when this is round `r_0`.
    #[must_use]
    pub fn is_first(self) -> bool {
        self.0 == 0
    }
}

impl From<u64> for Round {
    fn from(index: u64) -> Self {
        Round(index)
    }
}

impl From<Round> for u64 {
    fn from(r: Round) -> u64 {
        r.0
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The three phases of every synchronous round.
///
/// The paper's computation model divides each round into a *send* phase
/// (processes broadcast their votes), a *receive* phase (all messages sent in
/// the round are delivered), and a *computation* phase (processes apply the
/// MSR function to the gathered multiset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Processes send all messages for the current round.
    Send,
    /// Processes receive every message sent at the beginning of the round.
    Receive,
    /// Processes aggregate received values and prepare the next vote.
    Compute,
}

impl Phase {
    /// All phases in execution order.
    pub const ALL: [Phase; 3] = [Phase::Send, Phase::Receive, Phase::Compute];

    /// The phase following this one within a round, or `None` after
    /// [`Phase::Compute`] (the round is over).
    #[must_use]
    pub fn next(self) -> Option<Phase> {
        match self {
            Phase::Send => Some(Phase::Receive),
            Phase::Receive => Some(Phase::Compute),
            Phase::Compute => None,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Phase::Send => "send",
            Phase::Receive => "receive",
            Phase::Compute => "compute",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_arithmetic() {
        let r = Round::new(3);
        assert_eq!(r.index(), 3);
        assert_eq!(r.next(), Round::new(4));
        assert_eq!(r.previous(), Some(Round::new(2)));
        assert_eq!(Round::ZERO.previous(), None);
        assert!(Round::ZERO.is_first());
        assert!(!r.is_first());
    }

    #[test]
    fn round_conversions_and_display() {
        assert_eq!(u64::from(Round::new(5)), 5);
        assert_eq!(Round::from(5u64), Round::new(5));
        assert_eq!(Round::new(2).to_string(), "r2");
        assert_eq!(Round::default(), Round::ZERO);
    }

    #[test]
    fn phase_order() {
        assert_eq!(Phase::Send.next(), Some(Phase::Receive));
        assert_eq!(Phase::Receive.next(), Some(Phase::Compute));
        assert_eq!(Phase::Compute.next(), None);
        assert_eq!(Phase::ALL.len(), 3);
        assert!(Phase::Send < Phase::Compute);
    }

    #[test]
    fn phase_display() {
        assert_eq!(Phase::Send.to_string(), "send");
        assert_eq!(Phase::Receive.to_string(), "receive");
        assert_eq!(Phase::Compute.to_string(), "compute");
    }
}
