//! Wall-clock phase profiling — the **only** sanctioned home for host
//! clock reads in the result-affecting workspace.
//!
//! Everything else in `mbaa-obs` (and in every crate the engines are built
//! from) is forbidden from naming `Instant`/`SystemTime` by the
//! `mbaa-analyze` `determinism/wall-clock` lint; this module and
//! `crates/bench` are the two exemptions, and CI asserts the fence covers
//! exactly those. Timing data never feeds back into protocol state: a
//! [`PhaseProfiler`] only *listens* to the `phase_start`/`phase_end` hooks,
//! and the engines emit those hooks identically whether anyone is timing
//! or not.
//!
//! Profiling is opt-in from exactly two places: `crates/bench` (the
//! `phase_profile` bench) and the CLI (`mbaa run --profile`). The CLI's
//! live progress line also borrows [`Stopwatch`] from here so it can report
//! points/s without touching the clock itself.

use std::time::Instant;

use crate::{Observer, Phase};

/// A simple wall-clock stopwatch for progress reporting (points/s, ETA).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// An [`Observer`] that times the four round [`Phase`]s via the
/// `phase_start`/`phase_end` hooks and accumulates a per-phase breakdown.
///
/// Tolerates unbalanced hooks: a `phase_start` without a matching
/// `phase_end` (early convergence, exchange error) is simply discarded,
/// and a second `phase_start` restarts the span.
#[derive(Debug, Clone)]
pub struct PhaseProfiler {
    started: [Option<Instant>; 4],
    total_nanos: [u64; 4],
    spans: [u64; 4],
}

impl PhaseProfiler {
    /// Creates a profiler with empty accumulators.
    #[must_use]
    pub fn new() -> Self {
        Self {
            started: [None; 4],
            total_nanos: [0; 4],
            spans: [0; 4],
        }
    }

    /// The accumulated per-phase breakdown.
    #[must_use]
    pub fn breakdown(&self) -> PhaseBreakdown {
        PhaseBreakdown {
            rows: Phase::ALL
                .iter()
                .map(|&phase| PhaseRow {
                    phase,
                    total_nanos: self.total_nanos[phase.index()],
                    spans: self.spans[phase.index()],
                })
                .collect(),
        }
    }
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Observer for PhaseProfiler {
    // A profiler listens only to phase hooks; keeping `enabled()` false
    // spares the engine the telemetry-event assembly work so the timings
    // measure the protocol, not the observability layer.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn phase_start(&mut self, phase: Phase) {
        self.started[phase.index()] = Some(Instant::now());
    }

    #[inline]
    fn phase_end(&mut self, phase: Phase) {
        if let Some(t0) = self.started[phase.index()].take() {
            self.total_nanos[phase.index()] += t0.elapsed().as_nanos() as u64;
            self.spans[phase.index()] += 1;
        }
    }
}

/// One phase's accumulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRow {
    /// Which phase.
    pub phase: Phase,
    /// Total wall-clock nanoseconds spent in the phase.
    pub total_nanos: u64,
    /// Completed `phase_start`/`phase_end` spans.
    pub spans: u64,
}

impl PhaseRow {
    /// Mean nanoseconds per completed span, or 0 with no spans.
    #[must_use]
    pub fn mean_nanos(&self) -> u64 {
        self.total_nanos.checked_div(self.spans).unwrap_or(0)
    }
}

/// A per-phase wall-clock breakdown, one row per [`Phase`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Rows in [`Phase::ALL`] order.
    pub rows: Vec<PhaseRow>,
}

impl PhaseBreakdown {
    /// Total nanoseconds across all phases.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.rows.iter().map(|r| r.total_nanos).sum()
    }

    /// Renders the breakdown as an aligned text table (share of total,
    /// mean span, span count per phase).
    #[must_use]
    pub fn render(&self) -> String {
        let total = self.total_nanos().max(1);
        let mut out = String::from("phase           total      share   mean/span   spans\n");
        for row in &self.rows {
            let share = 100.0 * row.total_nanos as f64 / total as f64;
            out.push_str(&format!(
                "{:<14} {:>9} {:>8.1}% {:>10} {:>7}\n",
                row.phase.name(),
                format_nanos(row.total_nanos),
                share,
                format_nanos(row.mean_nanos()),
                row.spans,
            ));
        }
        out
    }
}

/// Formats a nanosecond count with a unit suffix.
#[must_use]
pub fn format_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_accumulates_spans() {
        let mut p = PhaseProfiler::new();
        p.phase_start(Phase::Exchange);
        p.phase_end(Phase::Exchange);
        p.phase_start(Phase::MsrApply);
        p.phase_end(Phase::MsrApply);
        p.phase_end(Phase::MsrApply); // unmatched end: ignored
        p.phase_start(Phase::Record); // unmatched start: discarded
        let b = p.breakdown();
        assert_eq!(b.rows.len(), 4);
        assert_eq!(b.rows[Phase::Exchange.index()].spans, 1);
        assert_eq!(b.rows[Phase::MsrApply.index()].spans, 1);
        assert_eq!(b.rows[Phase::Record.index()].spans, 0);
        let rendered = b.render();
        assert!(rendered.contains("exchange"));
        assert!(rendered.contains("msr_apply"));
    }

    #[test]
    fn nanos_formatting() {
        assert_eq!(format_nanos(12), "12ns");
        assert_eq!(format_nanos(1_500), "1.50us");
        assert_eq!(format_nanos(2_500_000), "2.50ms");
        assert_eq!(format_nanos(3_000_000_000), "3.00s");
    }

    #[test]
    fn stopwatch_moves_forward() {
        let sw = Stopwatch::start();
        assert!(sw.elapsed_secs() >= 0.0);
    }
}
