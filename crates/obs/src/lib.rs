//! Observability for mobile Byzantine approximate agreement runs.
//!
//! This crate has two strictly separated halves:
//!
//! 1. **Deterministic protocol telemetry** (this module): the [`Observer`]
//!    sink the engines invoke with structured, seed-keyed events
//!    ([`RoundEvent`], [`ConvergenceEvent`], [`RunEndEvent`]), plus the
//!    [`MetricsRegistry`] — integer counters and fixed-bucket
//!    [`Histogram`]s whose cross-seed/cross-worker [`MetricsRegistry::merge`]
//!    is order-independent and therefore bit-identical on every execution
//!    path. Nothing here may read the host clock, ambient randomness, or
//!    iteration order of an unordered container: every field of every event
//!    is derived from protocol state that is itself deterministic per seed.
//! 2. **Wall-clock phase profiling** ([`timing`]): the *only* module in the
//!    result-affecting workspace allowed to touch `std::time::Instant`. The
//!    `mbaa-analyze` `determinism/wall-clock` lint enforces that fence
//!    mechanically; see `docs/observability.md`.
//!
//! The engines are generic over `O: Observer` and call the hooks behind
//! [`Observer::enabled`], so a [`NoopObserver`] monomorphizes to nothing:
//! steady-state rounds stay zero-allocation (asserted by
//! `tests/alloc_regression.rs`) and recorded results are bit-identical with
//! or without an observer attached (asserted by `tests/observability.rs`).
//!
//! This crate deliberately has **no dependencies**: it sits below
//! `mbaa-core` in the workspace graph so both the engines (producers) and
//! `mbaa-json` / the CLI (consumers) can name the same event types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;

// ---------------------------------------------------------------------------
// Phases.
// ---------------------------------------------------------------------------

/// The four phases of one protocol round, in execution order.
///
/// The variant order is load-bearing: [`Phase::index`] indexes the
/// fixed-size accumulators in [`timing::PhaseProfiler`], and reports list
/// phases in this order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The adversary plans agent movement and corruption for the round.
    AdversaryPlan,
    /// Outboxes are filled and the synchronous exchange runs.
    Exchange,
    /// Each process applies the MSR voting function to its multiset.
    MsrApply,
    /// Diameter measurement, convergence bookkeeping, and event emission.
    Record,
}

impl Phase {
    /// All phases in execution order.
    pub const ALL: [Phase; 4] = [
        Phase::AdversaryPlan,
        Phase::Exchange,
        Phase::MsrApply,
        Phase::Record,
    ];

    /// Stable index of this phase into [`Phase::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Phase::AdversaryPlan => 0,
            Phase::Exchange => 1,
            Phase::MsrApply => 2,
            Phase::Record => 3,
        }
    }

    /// Stable lowercase name used in reports and JSON documents.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::AdversaryPlan => "adversary_plan",
            Phase::Exchange => "exchange",
            Phase::MsrApply => "msr_apply",
            Phase::Record => "record",
        }
    }
}

// ---------------------------------------------------------------------------
// Events.
// ---------------------------------------------------------------------------

/// One completed protocol round, as observed at the end of its record
/// phase. Every field is a scalar derived from seed-deterministic state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundEvent {
    /// Seed of the run this round belongs to.
    pub seed: u64,
    /// Zero-based round index within the run.
    pub round: u64,
    /// Non-faulty vote diameter after this round's MSR application.
    pub diameter: f64,
    /// `diameter / previous diameter` (1.0 when the previous diameter was
    /// zero), i.e. the per-round contraction ratio toward agreement.
    pub contraction: f64,
    /// Processes occupied by a mobile agent this round.
    pub faulty: u32,
    /// Processes an agent left at the start of this round.
    pub cured: u32,
    /// Cured processes that woke with an adversary-corrupted vote.
    pub corrupted: u32,
    /// Messages delivered during this round's exchange.
    pub delivered: u64,
    /// Process-level omissions (faulty/unreachable slots) this round.
    pub omissions: u64,
    /// Link-fault omissions this round.
    pub link_omissions: u64,
    /// Smallest post-reduction MSR multiset width across the processes
    /// that computed this round.
    pub msr_width: u32,
}

/// Emitted once per run that reaches ε-agreement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceEvent {
    /// Seed of the converged run.
    pub seed: u64,
    /// Rounds executed until the diameter first fell within ε.
    pub rounds: u64,
    /// Non-faulty diameter of the initial configuration.
    pub initial_diameter: f64,
    /// Non-faulty diameter when agreement was reached.
    pub final_diameter: f64,
}

/// Emitted exactly once per run, after the final round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunEndEvent {
    /// Seed of the run.
    pub seed: u64,
    /// Whether ε-agreement was reached within the round budget.
    pub reached_agreement: bool,
    /// Whether the validity envelope held for the final votes.
    pub validity: bool,
    /// Total rounds executed.
    pub rounds: u64,
    /// Non-faulty diameter of the initial configuration.
    pub initial_diameter: f64,
    /// Non-faulty diameter after the final round.
    pub final_diameter: f64,
    /// Geometric-mean contraction factor per round, when defined.
    pub mean_contraction: Option<f64>,
    /// Messages delivered over the whole run.
    pub messages_delivered: u64,
    /// Process-level omissions over the whole run.
    pub omissions: u64,
    /// Link-fault omissions over the whole run.
    pub link_omissions: u64,
    /// Cured processes that woke with a corrupted vote, summed over rounds.
    pub corruptions: u64,
}

/// Any telemetry event, for recording sinks and JSONL (de)serialization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A completed round.
    Round(RoundEvent),
    /// A run reached ε-agreement.
    Convergence(ConvergenceEvent),
    /// A run finished.
    RunEnd(RunEndEvent),
}

impl Event {
    /// Seed of the run this event belongs to.
    #[must_use]
    pub fn seed(&self) -> u64 {
        match self {
            Event::Round(e) => e.seed,
            Event::Convergence(e) => e.seed,
            Event::RunEnd(e) => e.seed,
        }
    }
}

// ---------------------------------------------------------------------------
// The observer sink.
// ---------------------------------------------------------------------------

/// Sink for engine telemetry. All hooks default to no-ops, so an
/// implementation overrides only what it needs.
///
/// The engines are generic over `O: Observer` and guard non-trivial event
/// assembly behind [`Observer::enabled`]; with [`NoopObserver`] the whole
/// telemetry path monomorphizes away. Implementations must not influence
/// protocol state — the engines pass events by reference and never read
/// anything back.
///
/// The `phase_start`/`phase_end` hooks delimit the four [`Phase`]s of each
/// round. They carry no data; the only sanctioned wall-clock consumer is
/// [`timing::PhaseProfiler`]. A phase may end implicitly (early convergence,
/// exchange error), so implementations must tolerate a `phase_start`
/// without a matching `phase_end`.
pub trait Observer {
    /// Whether the engine should assemble events at all. Hot loops skip
    /// stats snapshots and event construction when this is `false`.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// A protocol round completed.
    #[inline]
    fn on_round(&mut self, _event: &RoundEvent) {}

    /// A run reached ε-agreement.
    #[inline]
    fn on_convergence(&mut self, _event: &ConvergenceEvent) {}

    /// A run finished (always emitted, converged or not).
    #[inline]
    fn on_run_end(&mut self, _event: &RunEndEvent) {}

    /// A round phase is starting.
    #[inline]
    fn phase_start(&mut self, _phase: Phase) {}

    /// A round phase finished.
    #[inline]
    fn phase_end(&mut self, _phase: Phase) {}
}

/// Mutable references forward, so short-lived sinks can be borrowed into
/// an engine call (or a [`Tee`]) and read back afterwards.
impl<O: Observer + ?Sized> Observer for &mut O {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn on_round(&mut self, event: &RoundEvent) {
        (**self).on_round(event);
    }

    #[inline]
    fn on_convergence(&mut self, event: &ConvergenceEvent) {
        (**self).on_convergence(event);
    }

    #[inline]
    fn on_run_end(&mut self, event: &RunEndEvent) {
        (**self).on_run_end(event);
    }

    #[inline]
    fn phase_start(&mut self, phase: Phase) {
        (**self).phase_start(phase);
    }

    #[inline]
    fn phase_end(&mut self, phase: Phase) {
        (**self).phase_end(phase);
    }
}

/// The default observer: reports `enabled() == false` and compiles to
/// nothing inside the monomorphized engine loops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// A recording observer that stores every event in order.
///
/// In a batched run, round events from different lanes interleave
/// round-major; [`EventLog::for_seed`] recovers the per-seed subsequence,
/// which is bit-identical to the same seed's scalar-engine stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The subsequence of events belonging to `seed`, in emission order.
    #[must_use]
    pub fn for_seed(&self, seed: u64) -> Vec<Event> {
        self.events
            .iter()
            .filter(|e| e.seed() == seed)
            .copied()
            .collect()
    }

    /// Appends an event (for replaying recorded streams into sinks).
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }
}

impl Observer for EventLog {
    fn on_round(&mut self, event: &RoundEvent) {
        self.events.push(Event::Round(*event));
    }

    fn on_convergence(&mut self, event: &ConvergenceEvent) {
        self.events.push(Event::Convergence(*event));
    }

    fn on_run_end(&mut self, event: &RunEndEvent) {
        self.events.push(Event::RunEnd(*event));
    }
}

// ---------------------------------------------------------------------------
// Histograms.
// ---------------------------------------------------------------------------

/// A fixed-bucket histogram over `f64` samples with deterministic,
/// order-independent accumulation.
///
/// Bucket `i` covers `[bounds[i], bounds[i+1])`; the final bucket is the
/// overflow `[bounds.last(), +inf)` and samples below `bounds[0]` land in
/// bucket 0. Counts are `u64`, so merging two histograms is elementwise
/// integer addition — commutative and associative, which is what makes the
/// cross-worker [`MetricsRegistry::merge`] bit-identical regardless of
/// completion order.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket lower bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
        }
    }

    /// Rebuilds a histogram from serialized parts.
    ///
    /// # Panics
    /// Panics under the same conditions as [`Histogram::new`], or if
    /// `counts` has a different length than `bounds`.
    #[must_use]
    pub fn from_parts(bounds: Vec<f64>, counts: Vec<u64>) -> Self {
        assert_eq!(bounds.len(), counts.len(), "bounds/counts length mismatch");
        let mut h = Histogram::new(&bounds);
        h.counts = counts;
        h
    }

    /// Records one sample. Never allocates.
    pub fn record(&mut self, sample: f64) {
        // partition_point is a binary search over the fixed bounds: the
        // bucket is the last bound <= sample, clamped to bucket 0.
        let idx = self.bounds.partition_point(|b| *b <= sample);
        self.counts[idx.saturating_sub(1)] += 1;
    }

    /// The bucket lower bounds.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// The per-bucket counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds `other`'s counts into `self` (elementwise `u64` addition).
    ///
    /// # Panics
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += *theirs;
        }
    }
}

// ---------------------------------------------------------------------------
// The metrics registry.
// ---------------------------------------------------------------------------

/// Bucket lower bounds for the rounds-to-converge histogram.
pub const ROUNDS_BUCKETS: [f64; 10] = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Bucket lower bounds for the per-round contraction-ratio histogram.
/// Ratios below 1.0 are progress toward agreement; the overflow bucket
/// catches expansion rounds (corruption undoing progress).
pub const CONTRACTION_BUCKETS: [f64; 12] =
    [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.5];

/// Cross-run aggregate metrics: integer counters plus two fixed-bucket
/// histograms. All state is `u64`, so [`MetricsRegistry::merge`] is
/// commutative and associative — workers can merge chunk-local registries
/// in any completion order and the result is bit-identical.
///
/// As an [`Observer`] it buckets each round's contraction ratio in
/// `on_round` (no allocation) and folds run totals in `on_run_end`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRegistry {
    /// Runs observed.
    pub runs: u64,
    /// Runs that reached ε-agreement.
    pub converged: u64,
    /// Runs whose final votes escaped the validity envelope.
    pub validity_failures: u64,
    /// Rounds executed, summed over runs.
    pub rounds_total: u64,
    /// Messages delivered, summed over runs.
    pub messages_delivered: u64,
    /// Process-level omissions, summed over runs.
    pub omissions: u64,
    /// Link-fault omissions, summed over runs.
    pub link_omissions: u64,
    /// Cured-process vote corruptions, summed over runs.
    pub corruptions: u64,
    /// Distribution of rounds-to-converge over converged runs.
    pub rounds_to_converge: Histogram,
    /// Distribution of per-round contraction ratios over all rounds.
    pub contraction_ratio: Histogram,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry with the canonical bucket layouts.
    #[must_use]
    pub fn new() -> Self {
        Self {
            runs: 0,
            converged: 0,
            validity_failures: 0,
            rounds_total: 0,
            messages_delivered: 0,
            omissions: 0,
            link_omissions: 0,
            corruptions: 0,
            rounds_to_converge: Histogram::new(&ROUNDS_BUCKETS),
            contraction_ratio: Histogram::new(&CONTRACTION_BUCKETS),
        }
    }

    /// Folds a recorded [`Event`] into the registry, exactly as the live
    /// observer hooks would (`mbaa report` rebuilds a registry from an
    /// events JSONL stream through this).
    pub fn record_event(&mut self, event: &Event) {
        match event {
            Event::Round(e) => self.on_round_impl(e),
            Event::Convergence(e) => self.on_convergence_impl(e),
            Event::RunEnd(e) => self.on_run_end_impl(e),
        }
    }

    fn on_round_impl(&mut self, event: &RoundEvent) {
        self.contraction_ratio.record(event.contraction);
    }

    fn on_convergence_impl(&mut self, event: &ConvergenceEvent) {
        self.rounds_to_converge.record(event.rounds as f64);
    }

    fn on_run_end_impl(&mut self, event: &RunEndEvent) {
        self.runs += 1;
        self.converged += u64::from(event.reached_agreement);
        self.validity_failures += u64::from(!event.validity);
        self.rounds_total += event.rounds;
        self.messages_delivered += event.messages_delivered;
        self.omissions += event.omissions;
        self.link_omissions += event.link_omissions;
        self.corruptions += event.corruptions;
    }

    /// Adds `other` into `self`. Order-independent: `a.merge(b)` and
    /// `b.merge(a)` produce equal registries.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        self.runs += other.runs;
        self.converged += other.converged;
        self.validity_failures += other.validity_failures;
        self.rounds_total += other.rounds_total;
        self.messages_delivered += other.messages_delivered;
        self.omissions += other.omissions;
        self.link_omissions += other.link_omissions;
        self.corruptions += other.corruptions;
        self.rounds_to_converge.merge(&other.rounds_to_converge);
        self.contraction_ratio.merge(&other.contraction_ratio);
    }

    /// Fraction of observed runs that converged, or `None` with no runs.
    #[must_use]
    pub fn convergence_rate(&self) -> Option<f64> {
        (self.runs > 0).then(|| self.converged as f64 / self.runs as f64)
    }

    /// Mean rounds per run, or `None` with no runs.
    #[must_use]
    pub fn mean_rounds(&self) -> Option<f64> {
        (self.runs > 0).then(|| self.rounds_total as f64 / self.runs as f64)
    }
}

impl Observer for MetricsRegistry {
    fn on_round(&mut self, event: &RoundEvent) {
        self.on_round_impl(event);
    }

    fn on_convergence(&mut self, event: &ConvergenceEvent) {
        self.on_convergence_impl(event);
    }

    fn on_run_end(&mut self, event: &RunEndEvent) {
        self.on_run_end_impl(event);
    }
}

/// Fans events out to two observers. `enabled()` is the OR of the parts,
/// so pairing anything with a [`NoopObserver`] costs nothing extra.
#[derive(Debug, Default)]
pub struct Tee<A, B>(
    /// First sink.
    pub A,
    /// Second sink.
    pub B,
);

impl<A: Observer, B: Observer> Observer for Tee<A, B> {
    #[inline]
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn on_round(&mut self, event: &RoundEvent) {
        self.0.on_round(event);
        self.1.on_round(event);
    }

    fn on_convergence(&mut self, event: &ConvergenceEvent) {
        self.0.on_convergence(event);
        self.1.on_convergence(event);
    }

    fn on_run_end(&mut self, event: &RunEndEvent) {
        self.0.on_run_end(event);
        self.1.on_run_end(event);
    }

    fn phase_start(&mut self, phase: Phase) {
        self.0.phase_start(phase);
        self.1.phase_start(phase);
    }

    fn phase_end(&mut self, phase: Phase) {
        self.0.phase_end(phase);
        self.1.phase_end(phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(seed: u64, round: u64, contraction: f64) -> RoundEvent {
        RoundEvent {
            seed,
            round,
            diameter: 1.0,
            contraction,
            faulty: 1,
            cured: 1,
            corrupted: 0,
            delivered: 81,
            omissions: 0,
            link_omissions: 0,
            msr_width: 5,
        }
    }

    fn run_end(seed: u64, reached: bool, rounds: u64) -> RunEndEvent {
        RunEndEvent {
            seed,
            reached_agreement: reached,
            validity: true,
            rounds,
            initial_diameter: 1.0,
            final_diameter: 0.0,
            mean_contraction: Some(0.5),
            messages_delivered: 81 * rounds,
            omissions: 0,
            link_omissions: 0,
            corruptions: 2,
        }
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[0.0, 1.0, 2.0]);
        h.record(-0.5); // clamps to bucket 0
        h.record(0.0);
        h.record(0.999);
        h.record(1.0);
        h.record(5.0); // overflow bucket
        assert_eq!(h.counts(), &[3, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_merge_is_elementwise() {
        let mut a = Histogram::new(&[0.0, 1.0]);
        let mut b = Histogram::new(&[0.0, 1.0]);
        a.record(0.5);
        b.record(1.5);
        b.record(0.5);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[1.0, 0.5]);
    }

    #[test]
    fn registry_merge_is_order_independent() {
        let mut parts: Vec<MetricsRegistry> = (0..4)
            .map(|i| {
                let mut r = MetricsRegistry::new();
                r.on_round_impl(&round(i, 0, 0.25 * i as f64));
                r.on_run_end_impl(&run_end(i, i % 2 == 0, 3 + i));
                if i % 2 == 0 {
                    r.on_convergence_impl(&ConvergenceEvent {
                        seed: i,
                        rounds: 3 + i,
                        initial_diameter: 1.0,
                        final_diameter: 0.0,
                    });
                }
                r
            })
            .collect();

        let mut forward = MetricsRegistry::new();
        for p in &parts {
            forward.merge(p);
        }
        parts.reverse();
        let mut backward = MetricsRegistry::new();
        for p in &parts {
            backward.merge(p);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.runs, 4);
        assert_eq!(forward.converged, 2);
        assert_eq!(forward.rounds_total, 3 + 4 + 5 + 6);
    }

    #[test]
    fn record_event_matches_observer_hooks() {
        let events = [
            Event::Round(round(7, 0, 0.5)),
            Event::Convergence(ConvergenceEvent {
                seed: 7,
                rounds: 4,
                initial_diameter: 1.0,
                final_diameter: 0.0,
            }),
            Event::RunEnd(run_end(7, true, 4)),
        ];
        let mut via_hooks = MetricsRegistry::new();
        let mut via_events = MetricsRegistry::new();
        for e in &events {
            via_events.record_event(e);
            match e {
                Event::Round(r) => via_hooks.on_round(r),
                Event::Convergence(c) => via_hooks.on_convergence(c),
                Event::RunEnd(r) => via_hooks.on_run_end(r),
            }
        }
        assert_eq!(via_hooks, via_events);
    }

    #[test]
    fn event_log_filters_by_seed() {
        let mut log = EventLog::new();
        log.on_round(&round(1, 0, 0.5));
        log.on_round(&round(2, 0, 0.5));
        log.on_round(&round(1, 1, 0.4));
        log.on_run_end(&run_end(1, true, 2));
        let seed1 = log.for_seed(1);
        assert_eq!(seed1.len(), 3);
        assert!(matches!(seed1[2], Event::RunEnd(e) if e.seed == 1));
        assert_eq!(log.for_seed(2).len(), 1);
    }

    #[test]
    fn noop_observer_is_disabled() {
        assert!(!NoopObserver.enabled());
        assert!(!Tee(NoopObserver, NoopObserver).enabled());
        assert!(Tee(NoopObserver, EventLog::new()).enabled());
    }

    #[test]
    fn phase_round_trip() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::MsrApply.name(), "msr_apply");
    }
}
