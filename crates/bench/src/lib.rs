//! Benchmark harness crate.
//!
//! The actual benchmark targets live in `benches/`, one per table / figure /
//! proof construction of the paper (see the experiment index in DESIGN.md):
//!
//! * `table1_mapping` — Table 1, the Mobile → Mixed-Mode mapping.
//! * `table2_replicas` — Table 2, required replicas + empirical thresholds.
//! * `lowerbounds` — Theorems 3–6, the E1/E2/E3 impossibility witnesses.
//! * `convergence` — derived figures F1–F3 (contraction, rounds vs n,
//!   mobile vs static).
//! * `ablation` — derived figure F4 (adversary strategy grid).
//! * `engine_perf` — Criterion micro-benchmarks of the round engine and of
//!   the MSR computation itself.
//!
//! This library target only hosts small helpers shared by the bench mains.

use mbaa::Value;

/// Evenly spread initial values in `[0, 1]`, the workload used by most
/// benchmark targets.
#[must_use]
pub fn spread_inputs(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            if n == 1 {
                Value::ZERO
            } else {
                Value::new(i as f64 / (n - 1) as f64)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_inputs_cover_unit_interval() {
        let inputs = spread_inputs(5);
        assert_eq!(inputs.first(), Some(&Value::new(0.0)));
        assert_eq!(inputs.last(), Some(&Value::new(1.0)));
        assert_eq!(spread_inputs(1), vec![Value::ZERO]);
    }
}
