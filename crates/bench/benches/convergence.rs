//! Experiments **F1–F3** (derived figures): single-step contraction at the
//! bound, rounds-to-ε-agreement as `n` grows, and the mobile-vs-static
//! equivalence of Theorem 1 — all driven through the `Scenario` API.
//!
//! Run with `cargo bench -p mbaa-bench --bench convergence`. With
//! `MBAA_BENCH_JSON=<dir>` set, the per-experiment summary metrics are
//! also written as machine-readable rows to `BENCH_convergence.json`,
//! which `scripts/bench_diff.py` diffs across commits.

use criterion::{record_metric, write_json_report};
use mbaa::msr::convergence::predicted_rounds;
use mbaa::prelude::*;
use mbaa::sim::report::{fmt_f64, fmt_opt_f64, Table};
use mbaa::sim::stats::Summary;

fn f1_single_step_contraction() {
    println!("--- F1: per-round diameter contraction at n = n_Mi (f = 2, 50 seeds) ---\n");
    let mut table = Table::new([
        "model",
        "n",
        "mean contraction factor",
        "mean rounds to 1e-3",
        "predicted rounds (from factor)",
        "all runs valid + agreed",
    ]);
    for model in MobileModel::ALL {
        let scenario = Scenario::at_bound(model, 2);
        let batch = scenario.batch(0..50).run().expect("experiment");
        let factor = batch.mean_contraction();
        let predicted = factor.and_then(|c| predicted_rounds(1.0, Epsilon::new(1e-3), c));
        table.push_row([
            model.short_name().to_string(),
            scenario.n.to_string(),
            fmt_opt_f64(factor, 4),
            fmt_opt_f64(batch.mean_rounds(), 1),
            predicted.map_or_else(|| "-".to_string(), |r| r.to_string()),
            batch.all_succeeded().to_string(),
        ]);
        assert!(batch.all_succeeded(), "{model} failed at its bound");
        if let Some(factor) = factor {
            record_metric(
                "f1",
                &format!("{}/contraction", model.short_name()),
                factor,
                "factor",
            );
        }
        if let Some(rounds) = batch.mean_rounds() {
            record_metric(
                "f1",
                &format!("{}/mean_rounds", model.short_name()),
                rounds,
                "rounds",
            );
        }
    }
    println!("{table}");
}

fn f2_rounds_vs_n() {
    println!(
        "--- F2: rounds to epsilon-agreement vs n (f = 2, 10 seeds per point, eps = 1e-3) ---\n"
    );
    let mut table = Table::new(["model", "n", "mean rounds", "max rounds", "success rate"]);
    for model in MobileModel::ALL {
        let points = Scenario::at_bound(model, 2)
            .sweep_n(10)
            .seeds(0..10)
            .run()
            .expect("sweep");
        for point in points {
            let result = point.outcome.to_experiment_result();
            let rounds = result.rounds_of_successful_runs();
            let summary = Summary::of(&rounds);
            table.push_row([
                model.short_name().to_string(),
                point.scenario.n.to_string(),
                fmt_opt_f64(summary.map(|s| s.mean), 1),
                fmt_opt_f64(summary.map(|s| s.max), 0),
                fmt_f64(point.outcome.success_rate(), 2),
            ]);
            assert!(
                point.outcome.all_succeeded(),
                "{model} n={} failed",
                point.scenario.n
            );
            if let Some(summary) = summary {
                record_metric(
                    "f2",
                    &format!("{}/n={}/mean_rounds", model.short_name(), point.scenario.n),
                    summary.mean,
                    "rounds",
                );
            }
        }
    }
    println!("{table}");
    println!("The ordering of required system sizes is M4 < M1 < M2 < M3, as in Table 2.\n");
}

fn f3_mobile_vs_static() {
    println!(
        "--- F3: mobile computation vs its static Mixed-Mode image (Theorem 1), 20 seeds ---\n"
    );
    let mut table = Table::new([
        "model",
        "n",
        "mobile rounds (mean)",
        "static rounds (mean)",
        "mobile final diameter (mean)",
        "all converged",
    ]);
    for model in MobileModel::ALL {
        let f = 2;
        let n = model.required_processes(f) + 2;
        let scenario = Scenario::new(model, n, f).epsilon(1e-4).max_rounds(400);
        let points = mobile_vs_static(&scenario, 0..20).expect("equivalence sweep");
        let mobile_rounds: Vec<f64> = points.iter().map(|p| p.mobile_rounds() as f64).collect();
        let static_rounds: Vec<f64> = points.iter().map(|p| p.static_rounds() as f64).collect();
        let final_diameters: Vec<f64> = points
            .iter()
            .map(|p| p.mobile_diameters.last().copied().unwrap_or(0.0))
            .collect();
        let all_converged = points.iter().all(|p| p.both_converged);
        assert!(all_converged, "{model} diverged from its static image");
        table.push_row([
            model.short_name().to_string(),
            n.to_string(),
            fmt_opt_f64(Summary::of(&mobile_rounds).map(|s| s.mean), 1),
            fmt_opt_f64(Summary::of(&static_rounds).map(|s| s.mean), 1),
            fmt_opt_f64(Summary::of(&final_diameters).map(|s| s.mean), 6),
            all_converged.to_string(),
        ]);
        for (side, rounds) in [("mobile", &mobile_rounds), ("static", &static_rounds)] {
            if let Some(summary) = Summary::of(rounds) {
                record_metric(
                    "f3",
                    &format!("{}/{side}_rounds", model.short_name()),
                    summary.mean,
                    "rounds",
                );
            }
        }
    }
    println!("{table}");
}

fn main() {
    println!("\n=== F1-F3: convergence experiments ===\n");
    f1_single_step_contraction();
    f2_rounds_vs_n();
    f3_mobile_vs_static();
    println!("All convergence experiments match the paper's claims (P1/P2 contraction, Theorem 1 equivalence).");
    write_json_report();
}
