//! Experiment **P3**: seed-batched engine throughput — aggregate rounds
//! per second when k seeds of one scenario point advance in lockstep
//! through the structure-of-arrays `BatchEngine`.
//!
//! The grid is n ∈ {16, 64, 256} × k ∈ {1, 8, 32}. The k = 1 column is the
//! baseline: a single-lane batch degenerates to the scalar engine inside
//! `BatchEngine::run`, so the k = 8 / k = 32 rows measure exactly what the
//! SoA round loop buys (shared classification, one sort scratch, the
//! k-wide MSR fold) over running the same seeds one engine at a time.
//! Throughput is *aggregate*: total rounds summed over all lanes divided
//! by wall time, so perfect lane-sharing shows up as a multiple of the
//! k = 1 row rather than parity with it.
//!
//! The **general path** — partial topologies and dynamic/lossy fabrics,
//! which cannot use the complete-graph classification trick — gets its own
//! rows on a reduced n ∈ {64, 256} × k ∈ {1, 32} grid: `…/ring` runs a
//! `Ring {{ k: 2 }}` mask and `…/churn` a seeded-churn schedule over the
//! complete base. These guard the shared-realization batch delivery (one
//! adjacency + one compiled fault plan per batch instead of one
//! `SyncNetwork` per lane).
//!
//! A `packed_lane_occupancy` row reports the mean lane occupancy of the
//! cross-point packing scheduler over a shape-homogeneous multi-point
//! sweep (unit `occ%`, higher is better — `scripts/bench_diff.py` knows
//! the direction).
//!
//! Emits machine-readable `batch_rounds_per_sec/{n}/{k}` metric rows (unit
//! `rounds/s`) into `BENCH_engine_batch.json` via the criterion shim's
//! `MBAA_BENCH_JSON` hook; CI's bench-diff step compares the rows across
//! commits, so a batching regression shows up as a drop in rounds/sec.
//!
//! Run with `cargo bench -p mbaa-bench --bench engine_batch`. The
//! `MBAA_BENCH_SAMPLES` environment variable overrides the per-point run
//! count (CI smoke mode).

use std::time::Instant;

use criterion::{record_metric, write_json_report};

use mbaa::prelude::*;
use mbaa::{BatchEngine, BatchLane, ProtocolConfig};
use mbaa_bench::spread_inputs;

/// Timed batch executions per measured point (n = 256 is ~15× costlier
/// per round, so it gets fewer).
fn repetitions(n: usize) -> usize {
    let base = if n >= 256 { 20 } else { 200 };
    std::env::var("MBAA_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(base, |samples| samples.max(1))
}

/// Network variant of a measured point: the complete fast path, a static
/// partial mask (ring), or a dynamic churned fabric. Ring and churn both
/// exercise the general (masked-delivery) batch path.
#[derive(Clone, Copy)]
enum Variant {
    Complete,
    Ring,
    Churn,
}

impl Variant {
    fn suffix(self) -> &'static str {
        match self {
            Variant::Complete => "",
            Variant::Ring => "/ring",
            Variant::Churn => "/churn",
        }
    }
}

fn measure(n: usize, k: usize, variant: Variant) {
    let mut builder = ProtocolConfig::builder(MobileModel::Garay, n, 2)
        .epsilon(1e-12)
        .max_rounds(200)
        .seed(7)
        .observe(Observe::Summary);
    builder = match variant {
        Variant::Complete => builder,
        // k = 4 ring: 8 neighbors + self, the smallest ring neighborhood
        // that satisfies the Garay connectivity bound at f = 2.
        Variant::Ring => builder.topology(Topology::Ring { k: 4 }),
        // Mild churn over the complete base: every link flips out with
        // probability 0.15 per round, redrawn per (seed, round, link).
        Variant::Churn => builder.topology_schedule(TopologySchedule::SeededChurn {
            base: Topology::Complete,
            flip_rate: 0.15,
        }),
    };
    let config = builder.build().expect("config");
    let engine = BatchEngine::new(config);
    // Distinct seeds per lane, shared inputs: the adversary streams
    // diverge, the workload does not — the sweep-chunk shape.
    let lanes: Vec<BatchLane> = (0..k as u64)
        .map(|seed| BatchLane {
            seed: seed + 1,
            inputs: spread_inputs(n),
        })
        .collect();

    // Warm-up: fault the pages, fill the allocator pools.
    let mut rounds_per_batch = 0usize;
    for _ in 0..2 {
        rounds_per_batch = engine
            .run(&lanes)
            .into_iter()
            .map(|outcome| outcome.expect("run").rounds_executed)
            .sum();
    }

    let reps = repetitions(n);
    let start = Instant::now();
    let mut total_rounds = 0usize;
    for _ in 0..reps {
        total_rounds += engine
            .run(&lanes)
            .into_iter()
            .map(|outcome| outcome.expect("run").rounds_executed)
            .sum::<usize>();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let rounds_per_sec = total_rounds as f64 / elapsed;
    let suffix = variant.suffix();
    println!(
        "engine_batch n={n} k={k}{suffix}: {rounds_per_batch} rounds/batch, \
         {rounds_per_sec:.0} aggregate rounds/sec ({reps} batches)"
    );
    record_metric(
        "engine_batch",
        &format!("batch_rounds_per_sec/{n}/{k}{suffix}"),
        rounds_per_sec,
        "rounds/s",
    );
}

/// Mean lane occupancy of the cross-point packing scheduler over a
/// shape-homogeneous sweep: 21 points × 7 seeds. Per-point chunking would
/// launch 21 batches at 7/32 occupancy (21.9%); the packing planner merges
/// consecutive shape-compatible points into ⌈147/32⌉ = 5 packs (91.9%).
/// The plan is deterministic, so the row measures the scheduler, not the
/// machine.
fn measure_occupancy() {
    let seeds: Vec<u64> = (0..7).collect();
    let configs: Vec<ExperimentConfig> = (0..21)
        .map(|i| {
            // Distinct points (an ε axis), one batch shape (n, f, model).
            Scenario::new(MobileModel::Garay, 16, 2)
                .epsilon(1e-6 * (i + 1) as f64)
                .to_experiment(seeds.iter().copied())
        })
        .collect();
    let occupancy = mbaa::sim::mean_pack_occupancy(&configs).expect("pack plan");
    println!(
        "engine_batch packed sweep (21 points x 7 seeds): {:.1}% mean lane occupancy",
        occupancy * 100.0
    );
    record_metric(
        "engine_batch",
        "packed_lane_occupancy",
        occupancy * 100.0,
        "occ%",
    );
}

fn main() {
    for &n in &[16usize, 64, 256] {
        for &k in &[1usize, 8, 32] {
            measure(n, k, Variant::Complete);
        }
    }
    // General path: reduced grid, both a static partial mask and a
    // dynamic churned fabric.
    for &n in &[64usize, 256] {
        for &k in &[1usize, 32] {
            measure(n, k, Variant::Ring);
            measure(n, k, Variant::Churn);
        }
    }
    measure_occupancy();
    write_json_report();
}
