//! Experiment **P3**: seed-batched engine throughput — aggregate rounds
//! per second when k seeds of one scenario point advance in lockstep
//! through the structure-of-arrays `BatchEngine`.
//!
//! The grid is n ∈ {16, 64, 256} × k ∈ {1, 8, 32}. The k = 1 column is the
//! baseline: a single-lane batch degenerates to the scalar engine inside
//! `BatchEngine::run`, so the k = 8 / k = 32 rows measure exactly what the
//! SoA round loop buys (shared classification, one sort scratch, the
//! k-wide MSR fold) over running the same seeds one engine at a time.
//! Throughput is *aggregate*: total rounds summed over all lanes divided
//! by wall time, so perfect lane-sharing shows up as a multiple of the
//! k = 1 row rather than parity with it.
//!
//! Emits machine-readable `batch_rounds_per_sec/{n}/{k}` metric rows (unit
//! `rounds/s`) into `BENCH_engine_batch.json` via the criterion shim's
//! `MBAA_BENCH_JSON` hook; CI's bench-diff step compares the rows across
//! commits, so a batching regression shows up as a drop in rounds/sec.
//!
//! Run with `cargo bench -p mbaa-bench --bench engine_batch`. The
//! `MBAA_BENCH_SAMPLES` environment variable overrides the per-point run
//! count (CI smoke mode).

use std::time::Instant;

use criterion::{record_metric, write_json_report};

use mbaa::{BatchEngine, BatchLane, MobileModel, Observe, ProtocolConfig};
use mbaa_bench::spread_inputs;

/// Timed batch executions per measured point (n = 256 is ~15× costlier
/// per round, so it gets fewer).
fn repetitions(n: usize) -> usize {
    let base = if n >= 256 { 20 } else { 200 };
    std::env::var("MBAA_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(base, |samples| samples.max(1))
}

fn measure(n: usize, k: usize) {
    let config = ProtocolConfig::builder(MobileModel::Garay, n, 2)
        .epsilon(1e-12)
        .max_rounds(200)
        .seed(7)
        .observe(Observe::Summary)
        .build()
        .expect("config");
    let engine = BatchEngine::new(config);
    // Distinct seeds per lane, shared inputs: the adversary streams
    // diverge, the workload does not — the sweep-chunk shape.
    let lanes: Vec<BatchLane> = (0..k as u64)
        .map(|seed| BatchLane {
            seed: seed + 1,
            inputs: spread_inputs(n),
        })
        .collect();

    // Warm-up: fault the pages, fill the allocator pools.
    let mut rounds_per_batch = 0usize;
    for _ in 0..2 {
        rounds_per_batch = engine
            .run(&lanes)
            .into_iter()
            .map(|outcome| outcome.expect("run").rounds_executed)
            .sum();
    }

    let reps = repetitions(n);
    let start = Instant::now();
    let mut total_rounds = 0usize;
    for _ in 0..reps {
        total_rounds += engine
            .run(&lanes)
            .into_iter()
            .map(|outcome| outcome.expect("run").rounds_executed)
            .sum::<usize>();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let rounds_per_sec = total_rounds as f64 / elapsed;
    println!(
        "engine_batch n={n} k={k}: {rounds_per_batch} rounds/batch, \
         {rounds_per_sec:.0} aggregate rounds/sec ({reps} batches)"
    );
    record_metric(
        "engine_batch",
        &format!("batch_rounds_per_sec/{n}/{k}"),
        rounds_per_sec,
        "rounds/s",
    );
}

fn main() {
    for &n in &[16usize, 64, 256] {
        for &k in &[1usize, 8, 32] {
            measure(n, k);
        }
    }
    write_json_report();
}
