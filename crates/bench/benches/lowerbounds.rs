//! Experiments **LB1–LB4** (Theorems 3–6): the indistinguishability
//! constructions showing Approximate Agreement is impossible at `n = c·f`
//! in each mobile Byzantine model, exercised against a battery of concrete
//! voting rules.
//!
//! Run with `cargo bench -p mbaa-bench --bench lowerbounds`.

use mbaa::core::lower_bounds::all_scenarios;
use mbaa::prelude::*;
use mbaa::sim::report::Table;

fn main() {
    println!("\n=== LB1-LB4: Theorems 3-6 — impossibility at n = c·f ===\n");

    let rules: Vec<(&str, Box<dyn VotingFunction>)> = vec![
        ("plain mean", Box::new(MsrFunction::dolev_mean(0))),
        ("trimmed mean τ=1", Box::new(MsrFunction::dolev_mean(1))),
        ("trimmed mean τ=2", Box::new(MsrFunction::dolev_mean(2))),
        ("trimmed mean τ=3", Box::new(MsrFunction::dolev_mean(3))),
        (
            "FT midpoint τ=1",
            Box::new(MsrFunction::fault_tolerant_midpoint(1)),
        ),
        (
            "FT midpoint τ=2",
            Box::new(MsrFunction::fault_tolerant_midpoint(2)),
        ),
        (
            "reduced median τ=1",
            Box::new(MsrFunction::reduced_median(1)),
        ),
        ("median", Box::new(MedianVoting::new())),
    ];

    for f in 1..=3 {
        println!("--- f = {f} agents ---\n");
        let mut table = Table::new([
            "model (n = c·f)",
            "E3 indistinguishable",
            "rules violating the spec",
            "rules escaping (must be 0)",
        ]);
        for scenario in all_scenarios(f) {
            assert!(scenario.is_indistinguishable(), "{scenario}");
            let mut violating = 0;
            let mut escaping = 0;
            for (_, rule) in &rules {
                if scenario.evaluate(rule.as_ref()).violates_specification() {
                    violating += 1;
                } else {
                    escaping += 1;
                }
            }
            assert_eq!(escaping, 0, "a rule escaped {scenario}");
            table.push_row([
                format!("{} (n = {})", scenario.model.short_name(), scenario.n),
                scenario.is_indistinguishable().to_string(),
                format!("{violating}/{}", rules.len()),
                escaping.to_string(),
            ]);
        }
        println!("{table}");
    }

    println!("Detailed witnesses for f = 1 (which property each rule breaks):\n");
    let mut detail = Table::new([
        "model",
        "rule",
        "E1 decision",
        "E2 decision",
        "broken property",
    ]);
    for scenario in all_scenarios(1) {
        for (name, rule) in &rules {
            let w = scenario.evaluate(rule.as_ref());
            let broken = if w.violates_e1 {
                "validity in E1"
            } else if w.violates_e2 {
                "validity in E2"
            } else {
                "agreement in E3"
            };
            detail.push_row([
                scenario.model.short_name().to_string(),
                (*name).to_string(),
                format!("{:?}", w.decision_e1.map(|v| v.get())),
                format!("{:?}", w.decision_e2.map(|v| v.get())),
                broken.to_string(),
            ]);
        }
    }
    println!("{detail}");
    println!(
        "No voting rule satisfies Simple Approximate Agreement at n = c·f — matching Theorems 3-6."
    );
}
