//! Experiment **P2**: steady-state engine throughput (rounds per second)
//! across system sizes and observability levels.
//!
//! This is the guard rail of the zero-allocation round-scratch engine: it
//! drives complete seeded runs — the sweep hot path — at n ∈ {16, 64, 256}
//! under `Observe::Summary` (the streaming/sweep execution level, no
//! snapshots, no trace, no per-round allocation) and `Observe::Full` (every
//! recording on), and emits machine-readable `rounds_per_sec` metric rows
//! into `BENCH_engine_hot_path.json` via the criterion shim's
//! `MBAA_BENCH_JSON` hook. CI's bench-diff step compares the rows across
//! commits, so a hot-path regression (or an allocation creeping back into
//! the round loop) shows up as a drop in rounds/sec.
//!
//! Run with `cargo bench -p mbaa-bench --bench engine_hot_path`. The
//! `MBAA_BENCH_SAMPLES` environment variable overrides the per-point run
//! count (CI smoke mode).

use std::time::Instant;

use criterion::{record_metric, write_json_report};

use mbaa::{MobileEngine, MobileModel, Observe, ProtocolConfig, Value};
use mbaa_bench::spread_inputs;

/// Timed runs per measured point (n = 256 is ~15× costlier per round, so
/// it gets fewer).
fn repetitions(n: usize) -> usize {
    let base = if n >= 256 { 20 } else { 200 };
    std::env::var("MBAA_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(base, |samples| samples.max(1))
}

fn measure(n: usize, observe: Observe, label: &str) {
    let inputs: Vec<Value> = spread_inputs(n);
    let config = ProtocolConfig::builder(MobileModel::Garay, n, 2)
        .epsilon(1e-12)
        .max_rounds(200)
        .seed(7)
        .observe(observe)
        .build()
        .expect("config");
    let engine = MobileEngine::new(config);
    // Warm-up: fault the pages, fill the allocator pools.
    let mut rounds_per_run = 0usize;
    for _ in 0..2 {
        rounds_per_run = engine.run(&inputs).expect("run").rounds_executed;
    }

    let reps = repetitions(n);
    let start = Instant::now();
    let mut total_rounds = 0usize;
    for _ in 0..reps {
        total_rounds += engine.run(&inputs).expect("run").rounds_executed;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let rounds_per_sec = total_rounds as f64 / elapsed;
    println!(
        "engine_hot_path n={n} {label}: {rounds_per_run} rounds/run, \
         {rounds_per_sec:.0} rounds/sec ({reps} runs)"
    );
    record_metric(
        "engine_hot_path",
        &format!("rounds_per_sec/{n}/{label}"),
        rounds_per_sec,
        "rounds/s",
    );
}

fn main() {
    for &n in &[16usize, 64, 256] {
        measure(n, Observe::Summary, "summary");
        measure(n, Observe::Full, "full");
    }
    write_json_report();
}
