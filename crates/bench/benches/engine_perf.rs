//! Experiment **P1**: Criterion micro-benchmarks of the substrate — the
//! synchronous round engine, the full protocol round loop, and the MSR
//! computation itself — as the system size grows.
//!
//! Run with `cargo bench -p mbaa-bench --bench engine_perf`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use mbaa::{
    MobileEngine, MobileModel, MsrFunction, Outbox, ProcessId, ProtocolConfig, Round, SyncNetwork,
    Value, ValueMultiset, VotingFunction,
};
use mbaa_bench::spread_inputs;

/// One all-to-all exchange over the synchronous network.
fn bench_network_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_exchange");
    for &n in &[16usize, 64, 256, 1024] {
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let outboxes: Vec<Outbox> = (0..n)
                .map(|i| Outbox::broadcast(n, ProcessId::new(i), Value::new(i as f64)))
                .collect();
            b.iter(|| {
                let mut network = SyncNetwork::without_trace(n);
                let deliveries = network
                    .exchange(Round::ZERO, black_box(outboxes.clone()))
                    .expect("exchange");
                black_box(deliveries);
            });
        });
    }
    group.finish();
}

/// One evaluation of the MSR function over a multiset of votes.
fn bench_msr_function(c: &mut Criterion) {
    let mut group = c.benchmark_group("msr_function");
    for &n in &[16usize, 64, 256, 1024] {
        let votes: ValueMultiset = (0..n).map(|i| Value::new(i as f64)).collect();
        let function = MsrFunction::dolev_mean(n / 8);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(function.apply(black_box(&votes))));
        });
    }
    group.finish();
}

/// A complete protocol execution (until ε-agreement) under the worst-case
/// adversary, per model, at n = n_Mi + 2 with f = 2.
fn bench_full_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_protocol_run");
    group.sample_size(20);
    for model in MobileModel::ALL {
        let f = 2;
        let n = model.required_processes(f) + 2;
        let inputs = spread_inputs(n);
        group.bench_function(BenchmarkId::from_parameter(model.short_name()), |b| {
            b.iter(|| {
                let config = ProtocolConfig::builder(model, n, f)
                    .epsilon(1e-4)
                    .max_rounds(300)
                    .seed(7)
                    .build()
                    .expect("config");
                let outcome = MobileEngine::new(config)
                    .run(black_box(&inputs))
                    .expect("run");
                black_box(outcome.rounds_executed)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_network_exchange,
    bench_msr_function,
    bench_full_protocol
);
criterion_main!(benches);
