//! Experiment **F4** (derived figure): adversary-strategy ablation — success
//! rate and rounds-to-agreement for every (mobility, corruption) pair, for
//! every model, at exactly the required number of replicas.
//!
//! Run with `cargo bench -p mbaa-bench --bench ablation`.

use mbaa::prelude::*;
use mbaa::sim::report::{fmt_f64, fmt_opt_f64, Table};

fn main() {
    println!("\n=== F4: adversary ablation at n = n_Mi (f = 2, 5 seeds per cell) ===\n");

    let template = Scenario::at_bound(MobileModel::Buhrman, 2);
    let points = adversary_ablation(&template, 0..5).expect("ablation sweep");

    let mut table = Table::new([
        "model",
        "mobility",
        "corruption",
        "success rate",
        "mean rounds",
        "mean contraction",
    ]);
    let mut worst_rounds = 0.0f64;
    let mut worst_cell = String::new();
    for point in &points {
        let mean_rounds = point.outcome.mean_rounds();
        if let Some(r) = mean_rounds {
            if r > worst_rounds {
                worst_rounds = r;
                worst_cell = format!(
                    "{} / {} / {}",
                    point.model.short_name(),
                    point.mobility,
                    point.corruption
                );
            }
        }
        assert!(
            point.outcome.all_succeeded(),
            "{} with {}/{} failed above the bound",
            point.model,
            point.mobility,
            point.corruption
        );
        table.push_row([
            point.model.short_name().to_string(),
            point.mobility.to_string(),
            point.corruption.to_string(),
            fmt_f64(point.outcome.success_rate(), 2),
            fmt_opt_f64(mean_rounds, 1),
            fmt_opt_f64(point.outcome.mean_contraction(), 3),
        ]);
    }
    println!("{table}");
    println!(
        "cells evaluated: {} (4 models x {} mobility x {} corruption strategies)",
        points.len(),
        MobilityStrategy::ALL.len(),
        CorruptionStrategy::all_representative().len()
    );
    println!("slowest-converging cell: {worst_cell} ({worst_rounds:.1} rounds on average)");
    println!(
        "Every cell succeeds above the bound — no adversary strategy defeats the MSR family there."
    );
}
