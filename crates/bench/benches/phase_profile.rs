//! Experiment **P3**: wall-clock share of the four round phases.
//!
//! This is one of the two sanctioned opt-ins to `mbaa::obs::timing` (the
//! other is `mbaa run --profile`): a [`PhaseProfiler`] attached to complete
//! seeded scalar runs at n ∈ {16, 64, 256} accumulates per-phase spans via
//! the `phase_start`/`phase_end` hooks and prints the aligned breakdown
//! table. Machine-readable `phase_share` metric rows go into
//! `BENCH_phase_profile.json` via the criterion shim's `MBAA_BENCH_JSON`
//! hook, so CI's bench-diff step can flag a phase whose share drifts — an
//! MSR-apply regression shows up here before it shows up as a raw
//! rounds/sec drop. A second family of rows
//! (`phase_share/batch_ring/{n}/{phase}`) profiles the seed-batched
//! engine's general path over a shared ring realization.
//!
//! Because a profiler reports `enabled() == false`, the engine skips all
//! telemetry-event assembly while it is attached: the spans measure the
//! protocol phases themselves, not the observability layer.
//!
//! Run with `cargo bench -p mbaa-bench --bench phase_profile`. The
//! `MBAA_BENCH_SAMPLES` environment variable overrides the per-point run
//! count (CI smoke mode).

use criterion::{record_metric, write_json_report};

use mbaa::obs::timing::PhaseProfiler;
use mbaa::{
    BatchEngine, BatchLane, MobileEngine, MobileModel, Observe, ProtocolConfig, Topology, Value,
};
use mbaa_bench::spread_inputs;

/// Profiled runs per system size (n = 256 is ~15× costlier per round).
fn repetitions(n: usize) -> usize {
    let base = if n >= 256 { 10 } else { 100 };
    std::env::var("MBAA_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(base, |samples| samples.max(1))
}

fn profile(n: usize) {
    let inputs: Vec<Value> = spread_inputs(n);
    let config = ProtocolConfig::builder(MobileModel::Garay, n, 2)
        .epsilon(1e-12)
        .max_rounds(200)
        .seed(7)
        .observe(Observe::Summary)
        .build()
        .expect("config");
    let engine = MobileEngine::new(config);
    // Warm-up: fault the pages, fill the allocator pools.
    for _ in 0..2 {
        engine.run(&inputs).expect("run");
    }

    let reps = repetitions(n);
    let mut profiler = PhaseProfiler::new();
    for _ in 0..reps {
        engine
            .run_observed(&inputs, &mut profiler)
            .expect("profiled run");
    }
    let breakdown = profiler.breakdown();
    println!("phase_profile n={n} ({reps} run(s)):");
    print!("{}", breakdown.render());
    let total = breakdown.total_nanos().max(1);
    for row in &breakdown.rows {
        let share = 100.0 * row.total_nanos as f64 / total as f64;
        record_metric(
            "phase_profile",
            &format!("phase_share/{n}/{}", row.phase.name()),
            share,
            "%",
        );
    }
}

/// The seed-batched engine's **general path** under the profiler: 8 lanes
/// advancing in lockstep over a ring mask shared across the batch. The
/// batch engine emits the same four phase hooks as the scalar loop
/// (adversary planning, the masked exchange against the shared
/// realization, the lane-major MSR fold, and per-lane recording), so the
/// `phase_share/batch_ring/{n}/{phase}` rows show where the batched
/// round's time goes — the evidence behind the vectorized-fold work.
fn profile_batch(n: usize) {
    const K: usize = 8;
    let config = ProtocolConfig::builder(MobileModel::Garay, n, 2)
        .epsilon(1e-12)
        .max_rounds(200)
        .seed(7)
        .observe(Observe::Summary)
        .topology(Topology::Ring { k: 4 })
        .build()
        .expect("config");
    let engine = BatchEngine::new(config);
    let lanes: Vec<BatchLane> = (1..=K as u64)
        .map(|seed| BatchLane {
            seed,
            inputs: spread_inputs(n),
        })
        .collect();
    // Warm-up: fault the pages, fill the allocator pools.
    for _ in 0..2 {
        for outcome in engine.run(&lanes) {
            outcome.expect("run");
        }
    }

    // One batch advances K lanes, so divide the scalar repetition budget.
    let reps = repetitions(n).div_ceil(K);
    let mut profiler = PhaseProfiler::new();
    for _ in 0..reps {
        for outcome in engine.run_observed(&lanes, &mut profiler) {
            outcome.expect("profiled run");
        }
    }
    let breakdown = profiler.breakdown();
    println!("phase_profile batch_ring n={n} k={K} ({reps} batch(es)):");
    print!("{}", breakdown.render());
    let total = breakdown.total_nanos().max(1);
    for row in &breakdown.rows {
        let share = 100.0 * row.total_nanos as f64 / total as f64;
        record_metric(
            "phase_profile",
            &format!("phase_share/batch_ring/{n}/{}", row.phase.name()),
            share,
            "%",
        );
    }
}

fn main() {
    for &n in &[16usize, 64, 256] {
        profile(n);
    }
    // The batched general path on the reduced grid the engine_batch bench
    // uses for its ring/churn rows.
    for &n in &[64usize, 256] {
        profile_batch(n);
    }
    write_json_report();
}
