//! Experiment **T2** (Table 2 of the paper): required replicas per model,
//! plus an empirical sweep locating the smallest `n` at which every seeded
//! worst-case run reaches ε-agreement with validity.
//!
//! Run with `cargo bench -p mbaa-bench --bench table2_replicas`. With
//! `MBAA_BENCH_JSON=<dir>` set, the empirical thresholds are also written
//! as machine-readable rows to `BENCH_table2_replicas.json`, which
//! `scripts/bench_diff.py` diffs across commits.

use criterion::{record_metric, write_json_report};
use mbaa::core::bounds::{empirical_threshold, table2, ThresholdSearch};
use mbaa::prelude::*;
use mbaa::sim::report::Table;

fn main() {
    println!("\n=== T2: Table 2 — required replicas n_Mi ===\n");

    let mut theory = Table::new(["model", "requirement", "f=1", "f=2", "f=3", "f=4"]);
    for model in MobileModel::ALL {
        theory.push_row([
            model.to_string(),
            format!("n > {}f", model.bound_multiplier()),
            model.required_processes(1).to_string(),
            model.required_processes(2).to_string(),
            model.required_processes(3).to_string(),
            model.required_processes(4).to_string(),
        ]);
    }
    println!("{theory}");
    assert_eq!(table2(&[1, 2, 3, 4]).len(), 16);

    println!(
        "Empirical sweep (worst-case adversary: split corruption + extreme-targeting mobility,"
    );
    println!("8 seeds per n, epsilon = 1e-3, 300-round budget):\n");

    let mut empirical = Table::new([
        "model",
        "f",
        "n_Mi (theory)",
        "smallest n with all seeds succeeding",
        "theory sufficient",
        "successes per n (n:ok, from n = f+1)",
    ]);
    for model in MobileModel::ALL {
        for f in 1..=2 {
            let search = ThresholdSearch {
                seeds: (0..8).collect(),
                epsilon: 1e-3,
                max_rounds: 300,
                ..ThresholdSearch::worst_case(model, f)
            };
            let result = empirical_threshold(&search, 2).expect("threshold sweep");
            let successes = result
                .successes_per_n
                .iter()
                .map(|(n, ok)| format!("{n}:{ok}"))
                .collect::<Vec<_>>()
                .join(" ");
            assert!(
                result.theoretical_is_sufficient(),
                "theoretical requirement insufficient for {model} f={f}"
            );
            empirical.push_row([
                model.short_name().to_string(),
                f.to_string(),
                result.theoretical.to_string(),
                result.empirical.to_string(),
                result.theoretical_is_sufficient().to_string(),
                successes,
            ]);
            record_metric(
                "table2",
                &format!("{}/f={f}/empirical_threshold", model.short_name()),
                result.empirical as f64,
                "n",
            );
        }
    }
    println!("{empirical}");
    println!("The theoretical requirement of Table 2 is sufficient in every sweep; the empirical");
    println!("threshold may sit lower because a concrete adversary is not optimal (tightness is");
    println!("shown by the lowerbounds bench).");
    write_json_report();
}
