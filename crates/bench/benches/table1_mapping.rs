//! Experiment **T1** (Table 1 of the paper): the mapping between faulty /
//! cured behaviour in the mobile Byzantine models and the Mixed-Mode fault
//! classes, reproduced empirically by classifying instrumented executions.
//!
//! Run with `cargo bench -p mbaa-bench --bench table1_mapping`. With
//! `MBAA_BENCH_JSON=<dir>` set, the observed behaviour counts are also
//! written as machine-readable rows to `BENCH_table1_mapping.json`, which
//! `scripts/bench_diff.py` diffs across commits.

use criterion::{record_metric, write_json_report};
use mbaa::core::mapping::{classify_execution, theoretical_table};
use mbaa::prelude::*;
use mbaa::sim::report::Table;
use mbaa_bench::spread_inputs;

fn main() {
    let f = 2;
    let seeds: Vec<u64> = (0..20).collect();

    println!("\n=== T1: Table 1 — Mobile Byzantine -> Mixed-Mode mapping ===\n");
    println!(
        "(worst-case split adversary, f = {f}, {} seeds x 40 rounds per model)\n",
        seeds.len()
    );

    let mut table = Table::new([
        "model",
        "faulty (theory)",
        "cured (theory)",
        "faulty observed b/s/a",
        "cured observed b/s/a",
        "matches",
    ]);

    for row in theoretical_table() {
        let n = row.model.required_processes(f);
        let mut faulty = (0usize, 0usize, 0usize);
        let mut cured = (0usize, 0usize, 0usize);
        let mut matches = true;

        let scenario = Scenario::new(row.model, n, f)
            .epsilon(1e-12)
            .max_rounds(40)
            .adversary(
                MobilityStrategy::RoundRobin,
                CorruptionStrategy::split_attack(),
            )
            .inputs(spread_inputs(n));
        for &seed in &seeds {
            let outcome = scenario.run(seed).expect("engine run");
            let mapping = classify_execution(row.model, &outcome);
            faulty.0 += mapping.faulty.benign;
            faulty.1 += mapping.faulty.symmetric;
            faulty.2 += mapping.faulty.asymmetric;
            cured.0 += mapping.cured.benign;
            cured.1 += mapping.cured.symmetric;
            cured.2 += mapping.cured.asymmetric;
            matches &= mapping.matches_theory();
        }

        table.push_row([
            row.model.to_string(),
            row.faulty_class.to_string(),
            row.cured_class
                .map_or_else(|| "—".to_string(), |c| c.to_string()),
            format!("{}/{}/{}", faulty.0, faulty.1, faulty.2),
            format!("{}/{}/{}", cured.0, cured.1, cured.2),
            matches.to_string(),
        ]);
        assert!(
            matches,
            "empirical mapping diverged from Table 1 for {}",
            row.model
        );

        let model = row.model.short_name();
        for (role, (benign, symmetric, asymmetric)) in [("faulty", faulty), ("cured", cured)] {
            record_metric(
                "table1",
                &format!("{model}/{role}_benign"),
                benign as f64,
                "count",
            );
            record_metric(
                "table1",
                &format!("{model}/{role}_symmetric"),
                symmetric as f64,
                "count",
            );
            record_metric(
                "table1",
                &format!("{model}/{role}_asymmetric"),
                asymmetric as f64,
                "count",
            );
        }
    }

    println!("{table}");
    println!("Every model's observed faulty/cured behaviour matches Table 1 of the paper.");
    write_json_report();
}
